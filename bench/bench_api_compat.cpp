// §V-B1 API-specific compatibility test.
//
// The paper collects 20 CodePen apps that exercise specific APIs and has a
// student compare their behaviour on Firefox, Fuzzyfox, DeterFox and
// Firefox+JSKernel. Result: Fuzzyfox shows observable differences on 13/20
// apps, DeterFox on 7/20, JSKernel on 4/20 — and all of JSKernel's
// differences are time-related (performance.now / FPS), never functional.
//
// Our 20 synthetic apps each compute one user-observable metric (averaged
// over 3 visits); an app "shows an observable difference" under a defense
// when the metric deviates more than 10 % from legacy Firefox.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_obs.h"
#include "bench/bench_util.h"
#include "defenses/defense.h"

using namespace jsk;
namespace sim = jsk::sim;
namespace rt = jsk::rt;

namespace {

struct app {
    std::string name;
    std::string api;       // the API the CodePen search keyed on
    bool time_related;     // a difference here is cosmetic timing, not function
    std::function<double(rt::browser&)> run;
};

void serve_cross_origin(rt::browser& b, const std::string& url, std::size_t bytes)
{
    b.net().serve(
        rt::resource{url, "https://cdn.example", rt::resource_kind::data, bytes, 0, 0, 0});
}

/// Boolean spinner: does a 5 ms UI timer animate at all while a cross-origin
/// fetch is in flight? (DeterFox stalls it completely.)
app make_spinner_app(std::string name)
{
    const std::string url = "https://cdn.example/" + name;
    return app{std::move(name), "fetch+setTimeout", true, [url](rt::browser& b) {
                   serve_cross_origin(b, url, 120'000);
                   auto st = std::make_shared<std::pair<long, bool>>(0, false);
                   b.main().post_task(0, [&b, st, url] {
                       auto tick = std::make_shared<std::function<void()>>();
                       *tick = [&b, st, tick] {
                           if (st->second) return;
                           ++st->first;
                           b.main().apis().set_timeout([tick] { (*tick)(); }, 5 * sim::ms);
                       };
                       b.main().apis().set_timeout([tick] { (*tick)(); }, 5 * sim::ms);
                       b.main().apis().fetch(
                           url, {}, [st](const rt::fetch_result&) { st->second = true; },
                           [st](const rt::fetch_result&) { st->second = true; });
                   });
                   b.run_until(30 * sim::sec);
                   return st->first > 0 ? 1.0 : 0.0;
               }};
}

/// Cadence chain: user-perceived wall time for `steps` timer steps of
/// `interval` each. (Fuzzyfox's pause fuzz accumulates across the chain.)
app make_cadence_app(std::string name, int steps, sim::time_ns interval)
{
    return app{std::move(name), "setTimeout", true, [steps, interval](rt::browser& b) {
                   auto done_at = std::make_shared<double>(0.0);
                   b.main().post_task(0, [&b, done_at, steps, interval] {
                       auto remaining = std::make_shared<int>(steps);
                       auto tick = std::make_shared<std::function<void()>>();
                       *tick = [&b, done_at, remaining, interval, tick] {
                           if (--*remaining <= 0) {
                               *done_at = b.main().now_ms_raw();
                               return;
                           }
                           b.main().apis().set_timeout([tick] { (*tick)(); }, interval);
                       };
                       b.main().apis().set_timeout([tick] { (*tick)(); }, interval);
                   });
                   b.run_until(60 * sim::sec);
                   return *done_at;
               }};
}

std::vector<app> make_apps()
{
    std::vector<app> apps;

    // --- the four clock-facing apps (JSKernel's known, time-related deltas) ---
    apps.push_back({"stopwatch", "performance.now", true, [](rt::browser& b) {
                        auto out = std::make_shared<double>(0.0);
                        b.main().post_task(0, [&b, out] {
                            const double t0 = b.main().apis().performance_now();
                            b.main().consume(50 * sim::ms);
                            *out = b.main().apis().performance_now() - t0;
                        });
                        b.run();
                        return *out;
                    }});
    apps.push_back({"fps-meter", "requestAnimationFrame", true, [](rt::browser& b) {
                        auto st = std::make_shared<std::pair<double, int>>(-1.0, 0);
                        b.main().post_task(0, [&b, st] {
                            auto frame = std::make_shared<std::function<void(double)>>();
                            *frame = [&b, st, frame](double ts) {
                                if (st->first < 0) st->first = ts;
                                ++st->second;
                                if (ts - st->first < 500.0 && st->second < 200) {
                                    b.main().apis().request_animation_frame(
                                        [frame](double t) { (*frame)(t); });
                                }
                            };
                            b.main().apis().request_animation_frame(
                                [frame](double t) { (*frame)(t); });
                        });
                        b.run_until(30 * sim::sec);
                        return static_cast<double>(st->second);
                    }});
    apps.push_back({"progress-reader", "CSS animation", true, [](rt::browser& b) {
                        auto out = std::make_shared<double>(0.0);
                        auto target = std::make_shared<rt::element>("div");
                        b.main().post_task(0, [&b, out, target] {
                            b.painter().start_animation(target, 60);
                            b.main().apis().set_timeout(
                                [&b, out, target] {
                                    *out = std::stod(b.main().apis().get_attribute(
                                        target, "animation-progress"));
                                },
                                500 * sim::ms);
                        });
                        b.run_until(30 * sim::sec);
                        return *out;
                    }});
    apps.push_back({"clock-widget", "Date.now", true, [](rt::browser& b) {
                        auto out = std::make_shared<double>(0.0);
                        b.main().post_task(0, [&b, out] {
                            const double t0 = b.main().apis().date_now();
                            b.main().consume(200 * sim::ms);
                            *out = b.main().apis().date_now() - t0;
                        });
                        b.run();
                        return *out;
                    }});

    // --- seven spinner-during-cross-origin-load apps (DeterFox stalls them) ---
    apps.push_back(make_spinner_app("gallery-spinner"));
    apps.push_back(make_spinner_app("lazy-loader"));
    apps.push_back(make_spinner_app("skeleton-screen"));
    apps.push_back(make_spinner_app("ad-refresher"));
    apps.push_back(make_spinner_app("toast-on-load"));
    apps.push_back(make_spinner_app("chat-presence"));
    apps.push_back(make_spinner_app("map-tiles"));

    // --- eight cadence apps (Fuzzyfox's pause fuzz accumulates) ---
    apps.push_back(make_cadence_app("metronome", 20, 10 * sim::ms));
    apps.push_back(make_cadence_app("typewriter", 15, 20 * sim::ms));
    apps.push_back(make_cadence_app("carousel", 20, 10 * sim::ms));
    apps.push_back(make_cadence_app("autosave", 8, 25 * sim::ms));
    apps.push_back(make_cadence_app("spinner-rpm", 24, 15 * sim::ms));
    apps.push_back(make_cadence_app("game-loop", 40, 8 * sim::ms));
    apps.push_back(make_cadence_app("audio-meter", 30, 12 * sim::ms));
    apps.push_back(make_cadence_app("notification-queue", 10, 30 * sim::ms));

    // --- one purely functional app ---
    apps.push_back({"worker-echo", "Worker", false, [](rt::browser& b) {
                        b.register_worker_script("echo.js", [](rt::context& ctx) {
                            ctx.apis().set_self_onmessage(
                                [&ctx](const rt::message_event& e) {
                                    ctx.apis().post_message_to_parent(e.data, {});
                                });
                        });
                        auto out = std::make_shared<double>(0.0);
                        b.main().post_task(0, [&b, out] {
                            auto w = b.main().apis().create_worker("echo.js");
                            w->set_onmessage([out](const rt::message_event& e) {
                                *out = e.data.as_number();
                            });
                            w->post_message(rt::js_value{7.0});
                        });
                        b.run_until(30 * sim::sec);
                        return *out;
                    }});
    return apps;
}

double run_app(const app& a, defenses::defense_id id)
{
    // Average over three visits (the student played with each app a while).
    double acc = 0.0;
    for (std::uint64_t seed = 5; seed < 8; ++seed) {
        rt::browser b(rt::firefox_profile(), seed);
        auto def = defenses::make_defense(id, seed);
        def->install(b);
        acc += a.run(b);
    }
    return acc / 3.0;
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    const auto apps = make_apps();
    const std::vector<defenses::defense_id> columns{
        defenses::defense_id::fuzzyfox, defenses::defense_id::deterfox,
        defenses::defense_id::jskernel};

    std::printf("=== API-specific compatibility (sec. V-B1): %zu apps on Firefox ===\n",
                apps.size());
    std::printf("cell: metric value; '*' = observable difference vs legacy (>10%%)\n\n");
    bench::print_row({"app", "firefox", "fuzzyfox", "deterfox", "jskernel"}, 19);
    bench::print_rule(5, 19);

    std::vector<int> diff_counts(columns.size(), 0);
    int jskernel_nontime_diffs = 0;
    for (const auto& a : apps) {
        const double base = run_app(a, defenses::defense_id::legacy);
        std::vector<std::string> row{a.name, bench::fmt(base, 2)};
        for (std::size_t c = 0; c < columns.size(); ++c) {
            const double v = run_app(a, columns[c]);
            const double denom = std::abs(base) > 1e-9 ? std::abs(base) : 1.0;
            const bool differs = std::abs(v - base) / denom > 0.10;
            if (differs) {
                ++diff_counts[c];
                if (columns[c] == defenses::defense_id::jskernel && !a.time_related) {
                    ++jskernel_nontime_diffs;
                }
            }
            row.push_back(bench::fmt(v, 2) + (differs ? " *" : ""));
        }
        bench::print_row(row, 19);
    }

    std::printf("\nobservable differences: fuzzyfox %d/%zu (paper: 13/20), deterfox %d/%zu "
                "(paper: 7/20), jskernel %d/%zu (paper: 4/20)\n",
                diff_counts[0], apps.size(), diff_counts[1], apps.size(), diff_counts[2],
                apps.size());
    std::printf("jskernel non-time-related differences: %d (paper: 0 — all caused by "
                "performance.now)\n",
                jskernel_nontime_diffs);
    const bool ok = diff_counts[2] < diff_counts[1] && diff_counts[1] < diff_counts[0] &&
                    jskernel_nontime_diffs == 0 && diff_counts[2] <= 5;
    std::printf("shape holds (jskernel < deterfox < fuzzyfox, no functional breakage): %s\n",
                ok ? "yes" : "NO");
    if (!json_dir.empty()) {
        bench::json_report report("api_compat");
        report.set("fuzzyfox_diffs", static_cast<std::uint64_t>(diff_counts[0]));
        report.set("deterfox_diffs", static_cast<std::uint64_t>(diff_counts[1]));
        report.set("jskernel_diffs", static_cast<std::uint64_t>(diff_counts[2]));
        report.set("jskernel_nontime_diffs",
                   static_cast<std::uint64_t>(jskernel_nontime_diffs));
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return ok ? 0 : 1;
}
