// bench_svc — wall-clock of the sweep service's cache tiers.
//
//   bench_svc [--cves N] [--jobs J] [--json <dir>] [--strict-warm]
//
// Three passes over the same (CVE x {plain,jskernel}) wave:
//
//   cold       fresh service, empty store — every witness simulated
//   warm-mem   same service, same wave — served from the in-memory cache
//   warm-disk  fresh service over the same store directory — recalled from
//              the mmap-backed shard files, zero simulation
//
// Every warm pass is byte-compared against the cold merged JSON first — a
// recall that changes the aggregate is a correctness bug, and a mismatch
// always exits nonzero. On top of the pass rates, the store's single-key
// recall latency is sampled per get() and reported as p50/p90/p99.
//
// BENCH_svc.json records the rates, the latency percentiles and the
// warm-disk >= 10x cold bar as `meets_warm_target`; the bar only gates the
// exit code under --strict-warm (shared CI runners are noisy — the artifact
// tracks the trend instead of failing unrelated PRs).
//
// A durability tier A/Bs what crash safety costs: store append throughput
// with the per-wave fsync barrier on vs off, the same A/B at wave level,
// recovery-reopen latency over the populated store, and the null-plan vfs
// seam against the bare default path (the one-branch passthrough claim,
// recorded as `nullplan_overhead`). All non-gating.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "attacks/explore_sweep.h"
#include "bench/bench_util.h"
#include "faults/io.h"
#include "par/cache.h"
#include "svc/service.h"
#include "svc/store.h"
#include "svc/vfs.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

std::vector<jsk::svc::job> make_wave(std::size_t cves)
{
    const auto ids = jsk::attacks::cve_ids();
    if (cves > ids.size()) cves = ids.size();
    std::vector<jsk::svc::job> jobs;
    std::uint64_t client_id = 1;
    for (std::size_t c = 0; c < cves; ++c) {
        for (const char* defense : {"plain", "jskernel"}) {
            jsk::svc::job j;
            j.client_id = client_id++;
            j.key.seed = 17;
            j.key.defense = defense;
            j.key.program = ids[c];
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

jsk::svc::wave_result run_wave(jsk::svc::service& s, const std::vector<jsk::svc::job>& jobs)
{
    auto& sess = s.connect("bench");
    for (const auto& j : jobs) sess.submit(j);
    return sess.flush();
}

double percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

}  // namespace

int main(int argc, char** argv)
{
    std::size_t cves = 12;
    std::size_t jobs = 1;
    bool strict_warm = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cves") == 0 && i + 1 < argc) {
            cves = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--strict-warm") == 0) {
            strict_warm = true;
        }
    }

    namespace fs = std::filesystem;
    const std::string store_dir =
        (fs::temp_directory_path() / "jsk_bench_svc_store").string();
    fs::remove_all(store_dir);

    const auto wave_jobs = make_wave(cves);
    const auto n = static_cast<double>(wave_jobs.size());
    jsk::bench::json_report report("svc");
    report.set("wave_jobs", static_cast<std::uint64_t>(wave_jobs.size()));
    report.set("pool_jobs", static_cast<std::uint64_t>(jobs));

    jsk::svc::service_options opt;
    opt.store_dir = store_dir;
    opt.jobs = jobs;

    // --- cold: simulate everything, spill to the store ----------------------
    std::string cold_json;
    double cold_rate = 0;
    {
        jsk::svc::service s(opt);
        const auto t0 = clock_type::now();
        const auto cold = run_wave(s, wave_jobs);
        const double elapsed = seconds_since(t0);
        cold_json = cold.merged_json;
        cold_rate = n / elapsed;
        report.set("cold_seconds", elapsed);
        report.set("cold_trials_per_sec", cold_rate);

        // --- warm-mem: the same service serves the wave from memory ---------
        const auto t1 = clock_type::now();
        const auto warm = run_wave(s, wave_jobs);
        const double mem_elapsed = seconds_since(t1);
        report.set("warm_mem_seconds", mem_elapsed);
        report.set("warm_mem_jobs_per_sec", n / mem_elapsed);
        if (warm.merged_json != cold_json || warm.trials != 0) {
            std::fprintf(stderr, "bench_svc: warm-mem pass diverged from cold\n");
            return 1;
        }
    }

    // --- warm-disk: a fresh process recalls from the shard files ------------
    double disk_rate = 0;
    {
        jsk::svc::service s(opt);
        const auto t0 = clock_type::now();
        const auto warm = run_wave(s, wave_jobs);
        const double elapsed = seconds_since(t0);
        disk_rate = n / elapsed;
        report.set("warm_disk_seconds", elapsed);
        report.set("warm_disk_jobs_per_sec", disk_rate);
        if (warm.merged_json != cold_json || warm.trials != 0) {
            std::fprintf(stderr, "bench_svc: warm-disk pass diverged from cold\n");
            return 1;
        }
    }

    // --- single-key recall latency over the raw store -----------------------
    {
        jsk::svc::store_options sopt;
        sopt.dir = store_dir;
        jsk::svc::store st(sopt);
        std::vector<std::string> keys;
        for (const auto& j : wave_jobs) keys.push_back(jsk::par::serialize(j.key));
        std::vector<double> lat_us;
        constexpr int rounds = 200;
        lat_us.reserve(keys.size() * rounds);
        for (int r = 0; r < rounds; ++r) {
            for (const auto& k : keys) {
                const auto t0 = clock_type::now();
                const auto hit = st.get(k);
                const double us = seconds_since(t0) * 1e6;
                if (!hit) {
                    std::fprintf(stderr, "bench_svc: store lost a key\n");
                    return 1;
                }
                lat_us.push_back(us);
            }
        }
        std::sort(lat_us.begin(), lat_us.end());
        report.set("recall_samples", static_cast<std::uint64_t>(lat_us.size()));
        report.set("recall_p50_us", percentile(lat_us, 0.50));
        report.set("recall_p90_us", percentile(lat_us, 0.90));
        report.set("recall_p99_us", percentile(lat_us, 0.99));
    }

    // --- durability tier -----------------------------------------------------
    // What the crash-safety machinery costs: append throughput with the
    // per-wave fsync barrier on vs off, the same A/B at wave level, the
    // latency of reopening (index rebuild + intent scan) over a populated
    // store, and the null-plan vfs seam against the bare default path. All
    // recorded, none gating — the numbers track the trend.
    {
        const std::string dur_dir =
            (fs::temp_directory_path() / "jsk_bench_svc_durability").string();
        constexpr int batches = 32;
        constexpr int batch = 64;
        const auto append_rate = [&](bool fsync, jsk::svc::vfs* fs) {
            fs::remove_all(dur_dir);
            jsk::svc::store_options sopt;
            sopt.dir = dur_dir;
            sopt.fsync = fsync;
            sopt.fs = fs;
            jsk::svc::store st(sopt);
            const std::string value(256, 'v');
            const auto t0 = clock_type::now();
            for (int b = 0; b < batches; ++b) {
                for (int i = 0; i < batch; ++i) {
                    st.put("key-" + std::to_string(b) + "-" + std::to_string(i),
                           value);
                }
                if (!st.sync()) {
                    std::fprintf(stderr, "bench_svc: durable append failed\n");
                    std::exit(1);
                }
            }
            return static_cast<double>(batches * batch) / seconds_since(t0);
        };
        const double fsync_rate = append_rate(true, nullptr);
        const double nofsync_rate = append_rate(false, nullptr);
        report.set("append_fsync_per_sec", fsync_rate);
        report.set("append_nofsync_per_sec", nofsync_rate);
        report.set("fsync_cost_ratio",
                   fsync_rate > 0 ? nofsync_rate / fsync_rate : 0);

        // The fault seam's null-plan passthrough vs the bare default vfs:
        // one branch per op, so the ratio should sit at ~1.0.
        jsk::faults::io_plan null_plan;
        jsk::faults::io_injector inj(null_plan);
        jsk::svc::vfs seam(&inj);
        const double seam_rate = append_rate(false, &seam);
        report.set("append_nullplan_per_sec", seam_rate);
        report.set("nullplan_overhead",
                   seam_rate > 0 ? nofsync_rate / seam_rate : 0);
        fs::remove_all(dur_dir);

        // Wave throughput with the ack-barrier fsync off.
        fs::remove_all(store_dir);
        jsk::svc::service_options nofsync_opt = opt;
        nofsync_opt.fsync = false;
        jsk::svc::service s(nofsync_opt);
        const auto t0 = clock_type::now();
        const auto wave = run_wave(s, wave_jobs);
        const double elapsed = seconds_since(t0);
        report.set("cold_nofsync_seconds", elapsed);
        report.set("cold_nofsync_trials_per_sec", n / elapsed);
        if (wave.merged_json != cold_json) {
            std::fprintf(stderr, "bench_svc: nofsync pass diverged from cold\n");
            return 1;
        }

        // Recovery-reopen latency: service construction over the populated
        // store (shard scan + mmap index + intent-log scan + epoch claim).
        std::vector<double> reopen_ms;
        for (int r = 0; r < 10; ++r) {
            const auto r0 = clock_type::now();
            jsk::svc::service reopened(opt);
            reopen_ms.push_back(seconds_since(r0) * 1e3);
        }
        std::sort(reopen_ms.begin(), reopen_ms.end());
        report.set("reopen_p50_ms", percentile(reopen_ms, 0.50));
        report.set("reopen_p90_ms", percentile(reopen_ms, 0.90));
    }

    const double ratio = cold_rate > 0 ? disk_rate / cold_rate : 0;
    const bool meets = ratio >= 10.0;
    report.set("warm_over_cold", ratio);
    report.set("meets_warm_target", static_cast<std::uint64_t>(meets ? 1 : 0));
    report.set_string("byte_identical", "yes");  // divergence exited above

    std::printf("bench_svc: %zu jobs | cold %.1f trials/s | warm-mem served | "
                "warm-disk %.1f jobs/s | warm/cold %.1fx%s\n",
                wave_jobs.size(), cold_rate, disk_rate, ratio,
                meets ? "" : "  (below 10x bar)");
    report.write(jsk::bench::json_out_dir(argc, argv));
    fs::remove_all(store_dir);
    if (strict_warm && !meets) return 1;
    return 0;
}
