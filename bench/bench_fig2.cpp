// Figure 2: Script Parsing Attack with Asynchronous Clock.
//
// For each defense, loads a cross-origin script of 1..10 MB and reports the
// parsing time the *adversary* measures with the setTimeout implicit clock
// (tick count converted to ms at the nominal 4 ms nested-timer tick). The
// paper's shape: every defense except JSKernel produces a series increasing
// with file size; JSKernel is flat.
#include <cstdio>

#include "attacks/attacks_impl.h"
#include "bench/bench_obs.h"
#include "bench/bench_util.h"

using namespace jsk;

namespace {

double reported_ms(defenses::defense_id id, std::size_t bytes, std::uint64_t seed)
{
    rt::browser b(rt::chrome_profile(), seed);
    auto def = defenses::make_defense(id, seed);
    def->install(b);
    attacks::script_parsing atk;
    const double ticks = atk.measure_size(b, bytes);
    return ticks * 4.0;  // adversary's calibrated tick length (nested clamp)
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    std::printf("=== Figure 2: reported script parsing time (ms) vs size (MB) ===\n\n");
    std::vector<std::string> header{"size(MB)"};
    for (const auto id : defenses::all_defense_ids()) {
        header.push_back(defenses::to_string(id));
    }
    bench::print_row(header);
    bench::print_rule(header.size());

    bool jskernel_flat = true;
    double jskernel_first = -1.0;
    for (int mb = 1; mb <= 10; ++mb) {
        std::vector<std::string> row{std::to_string(mb)};
        for (const auto id : defenses::all_defense_ids()) {
            const double ms =
                reported_ms(id, static_cast<std::size_t>(mb) * 1'000'000, 77 + mb);
            row.push_back(bench::fmt(ms, 1));
            if (id == defenses::defense_id::jskernel) {
                if (jskernel_first < 0) jskernel_first = ms;
                else if (ms != jskernel_first) jskernel_flat = false;
            }
        }
        bench::print_row(row);
    }
    std::printf("\njskernel series flat across sizes: %s\n",
                jskernel_flat ? "yes (paper: constant ~10 ms)" : "NO");
    if (!json_dir.empty()) {
        bench::json_report report("fig2");
        report.set("jskernel_flat", std::uint64_t{jskernel_flat ? 1u : 0u});
        report.set("jskernel_reported_ms", jskernel_first);
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return jskernel_flat ? 0 : 1;
}
