// Shared helpers for the paper-table reproduction binaries: fixed-width table
// formatting, and the `--json <dir>` perf-trajectory output every bench
// binary supports (machine-readable BENCH_*.json files that CI archives, so
// numbers accrete across PRs instead of scrolling away in logs).
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace jsk::bench {

/// Print a row of fixed-width columns.
inline void print_row(const std::vector<std::string>& cells, int width = 14)
{
    for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

inline void print_rule(std::size_t columns, int width = 14)
{
    std::printf("%s\n", std::string(columns * static_cast<std::size_t>(width), '-').c_str());
}

inline std::string fmt(double v, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string fmt_pm(double mean, double stddev, int precision = 1)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, mean, precision, stddev);
    return buf;
}

/// Directory for BENCH_*.json output, from a `--json <dir>` argument.
/// Empty string when the flag is absent (callers then skip JSON output).
inline std::string json_out_dir(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--json") return argv[i + 1];
    }
    return {};
}

/// An insertion-ordered flat JSON object ({"metric": value, ...}) written as
/// BENCH_<name>.json. Values are numbers or strings; numbers are emitted
/// with enough precision to round-trip.
class json_report {
public:
    explicit json_report(std::string name) : name_(std::move(name)) {}

    void set(const std::string& key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        fields_.emplace_back(key, buf);
    }

    void set(const std::string& key, std::uint64_t value)
    {
        fields_.emplace_back(key, std::to_string(value));
    }

    void set_string(const std::string& key, const std::string& value)
    {
        fields_.emplace_back(key, "\"" + escape(value) + "\"");
    }

    /// Embed a pre-serialized JSON value verbatim (e.g. an obs metrics
    /// snapshot from jsk::obs::registry::to_json()). The caller owns its
    /// validity.
    void set_raw(const std::string& key, std::string raw_json)
    {
        fields_.emplace_back(key, std::move(raw_json));
    }

    /// Write BENCH_<name>.json into `dir` (created if needed). Returns the
    /// path written, or empty on failure/empty dir.
    std::string write(const std::string& dir) const
    {
        if (dir.empty()) return {};
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        const std::string path =
            (std::filesystem::path(dir) / ("BENCH_" + name_ + ".json")).string();
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
            return {};
        }
        out << "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            out << "  \"" << escape(fields_[i].first) << "\": " << fields_[i].second;
            if (i + 1 < fields_.size()) out << ",";
            out << "\n";
        }
        out << "}\n";
        std::printf("wrote %s\n", path.c_str());
        return path;
    }

private:
    static std::string escape(const std::string& s)
    {
        std::string out;
        out.reserve(s.size());
        for (const char c : s) {
            switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\n': out += "\\n"; break;
                case '\t': out += "\\t"; break;
                default: out += c;
            }
        }
        return out;
    }

    std::string name_;
    std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace jsk::bench
