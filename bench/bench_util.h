// Shared formatting helpers for the paper-table reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace jsk::bench {

/// Print a row of fixed-width columns.
inline void print_row(const std::vector<std::string>& cells, int width = 14)
{
    for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

inline void print_rule(std::size_t columns, int width = 14)
{
    std::printf("%s\n", std::string(columns * static_cast<std::size_t>(width), '-').c_str());
}

inline std::string fmt(double v, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string fmt_pm(double mean, double stddev, int precision = 1)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, mean, precision, stddev);
    return buf;
}

}  // namespace jsk::bench
