// §V-A1 micro-benchmark: Dromaeo-like suites with and without JSKernel.
//
// Paper numbers: 1.99 % average / 0.30 % median performance drop; the DOM
// attribute test is the worst at 21.15 % because every get/setAttribute
// round-trips through the kernel.
#include <algorithm>
#include <cstdio>

#include "bench/bench_obs.h"
#include "bench/bench_util.h"
#include "defenses/defense.h"
#include "workloads/sites.h"

using namespace jsk;

namespace {

double run_once(const std::string& test, bool with_kernel)
{
    rt::browser b(rt::chrome_profile());
    std::unique_ptr<defenses::defense> def;
    if (with_kernel) {
        def = defenses::make_defense(defenses::defense_id::jskernel);
        def->install(b);
    }
    return workloads::run_dromaeo_test(b, test).duration_ms;
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    std::printf("=== Dromaeo-like micro-benchmark: JSKernel overhead per test ===\n\n");
    bench::print_row({"test", "baseline(ms)", "jskernel(ms)", "overhead(%)"}, 18);
    bench::print_rule(4, 18);

    std::vector<double> overheads;
    double dom_attr_overhead = 0.0;
    for (const auto& test : workloads::dromaeo_tests()) {
        const double base = run_once(test, false);
        const double kernel = run_once(test, true);
        const double overhead = base > 0 ? (kernel / base - 1.0) * 100.0 : 0.0;
        overheads.push_back(overhead);
        if (test == "dom-attr") dom_attr_overhead = overhead;
        bench::print_row({test, bench::fmt(base, 3), bench::fmt(kernel, 3),
                          bench::fmt(overhead, 2)},
                         18);
    }

    std::vector<double> sorted = overheads;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    double avg = 0.0;
    for (double o : overheads) avg += o;
    avg /= static_cast<double>(overheads.size());

    std::printf("\naverage overhead: %.2f%% (paper: 1.99%%)\n", avg);
    std::printf("median overhead:  %.2f%% (paper: 0.30%%)\n", median);
    std::printf("dom-attr overhead: %.2f%% (paper's worst case: 21.15%%)\n",
                dom_attr_overhead);
    const bool ok = median < 2.0 && dom_attr_overhead > 5.0 && dom_attr_overhead < 60.0;
    std::printf("shape holds (tiny median, DOM-attr dominates): %s\n", ok ? "yes" : "NO");
    if (!json_dir.empty()) {
        bench::json_report report("dromaeo");
        report.set("average_overhead_pct", avg);
        report.set("median_overhead_pct", median);
        report.set("dom_attr_overhead_pct", dom_attr_overhead);
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return ok ? 0 : 1;
}
