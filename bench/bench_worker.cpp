// §V-A1 worker benchmark (pmav.eu-style): create 16 workers, measure the
// time until every worker script ran; 5 repeats, with and without JSKernel.
// Paper: ~0.9 % average overhead.
#include <cstdio>

#include "bench/bench_obs.h"
#include "bench/bench_util.h"
#include "defenses/defense.h"
#include "sim/stats.h"
#include "workloads/sites.h"

using namespace jsk;

namespace {

sim::summary run_bench(bool with_kernel, int repeats)
{
    std::vector<double> times;
    for (int r = 0; r < repeats; ++r) {
        rt::browser b(rt::chrome_profile(), 50 + static_cast<std::uint64_t>(r));
        std::unique_ptr<defenses::defense> def;
        if (with_kernel) {
            def = defenses::make_defense(defenses::defense_id::jskernel);
            def->install(b);
        }
        times.push_back(workloads::run_worker_bench(b, 16));
    }
    return sim::summarize(times);
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    const int repeats = 5;
    std::printf("=== Worker benchmark: 16 workers, %d repeats ===\n\n", repeats);
    const auto base = run_bench(false, repeats);
    const auto kernel = run_bench(true, repeats);
    bench::print_row({"config", "mean(ms)", "stddev"}, 16);
    bench::print_rule(3, 16);
    bench::print_row({"chrome", bench::fmt(base.mean), bench::fmt(base.stddev)}, 16);
    bench::print_row({"chrome+jskernel", bench::fmt(kernel.mean), bench::fmt(kernel.stddev)},
                     16);
    const double overhead = (kernel.mean / base.mean - 1.0) * 100.0;
    std::printf("\noverhead: %.2f%% (paper: ~0.9%%)\n", overhead);
    const bool ok = overhead < 15.0;
    std::printf("shape holds (small worker-creation overhead): %s\n", ok ? "yes" : "NO");
    if (!json_dir.empty()) {
        bench::json_report report("worker");
        report.set("base_mean_ms", base.mean);
        report.set("kernel_mean_ms", kernel.mean);
        report.set("overhead_pct", overhead);
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return ok ? 0 : 1;
}
