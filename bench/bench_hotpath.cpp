// Scheduling hot-path benchmark: the two structures this repo's throughput
// hangs on, measured end to end.
//
//  * BENCH_sim.json — simulation scheduling: unhooked pop-queue throughput,
//    hooked (exploration) step rate on a synthetic cross-posting workload,
//    and explore steps/sec on the CVE-matrix sweep (the workload the
//    schedule-exploration engine actually runs).
//  * BENCH_kernel.json — kernel event_queue: the flat-heap implementation
//    A/B'd against the pre-overhaul std::map+unordered_map queue (kept here
//    verbatim) on an identical op mix, plus the horizon-probe cost.
//
// Run with `--json <dir>` to append the machine-readable trajectory files.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "attacks/attacks_impl.h"
#include "attacks/explore_sweep.h"
#include "bench/bench_obs.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "bench/bench_util.h"
#include "defenses/defense.h"
#include "kernel/event_queue.h"
#include "obs/collect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/browser.h"
#include "runtime/profile.h"
#include "runtime/vuln.h"
#include "sim/explore.h"
#include "sim/simulation.h"

namespace {

using namespace jsk;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

// --- sim scheduling ------------------------------------------------------------

/// Cross-posting DES workload: `chains` independent task chains ping-pong
/// across `threads` threads (deterministic pseudo-random targets) until
/// `total` tasks ran. Each chain reposts exactly one follow-up, so the
/// pending set stays near `chains` — a steady scheduler backlog, not an
/// unbounded one. Cross-thread posts exercise the channel FIFO index; timer
/// self-posts exercise the per-thread ready heaps.
struct sim_workload {
    sim::simulation sim;
    std::vector<sim::thread_id> threads;
    std::uint64_t budget;
    std::uint64_t rng = 0x2545f4914f6cdd1dull;

    sim_workload(int thread_count, int chains, std::uint64_t total) : budget(total)
    {
        for (int t = 0; t < thread_count; ++t) {
            threads.push_back(sim.create_thread("t" + std::to_string(t)));
        }
        for (int c = 0; c < chains; ++c) {
            sim.post(threads[static_cast<std::size_t>(c) % threads.size()],
                     c * sim::us, [this] { step(); }, "step");
        }
    }

    std::uint64_t next_rand()
    {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    }

    void step()
    {
        sim.consume(1 * sim::us);
        if (budget == 0) return;
        --budget;
        const std::uint64_t r = next_rand();
        const sim::thread_id target = threads[r % threads.size()];
        // Mostly near-future posts; occasional far timers keep the pending
        // set (and thus the index depth) non-trivial.
        const sim::time_ns delay =
            (r >> 8) % 16 == 0 ? (1 + (r >> 16) % 50) * sim::ms : (r >> 16) % 4 * sim::us;
        sim.post(target, sim.now() + delay, [this] { step(); }, "step");
    }
};

struct sim_numbers {
    double unhooked_ns_per_task = 0;
    double unhooked_tasks_per_sec = 0;
    std::size_t unhooked_peak_pending = 0;
    double hooked_ns_per_step = 0;
    double hooked_steps_per_sec = 0;
    std::size_t hooked_peak_pending = 0;
};

sim_numbers run_sim_micro(std::uint64_t unhooked_tasks, std::uint64_t hooked_tasks)
{
    sim_numbers out;
    {
        sim_workload w(/*thread_count=*/4, /*chains=*/64, unhooked_tasks);
        const auto t0 = clock_type::now();
        w.sim.run(unhooked_tasks);
        const double s = seconds_since(t0);
        out.unhooked_ns_per_task = s * 1e9 / static_cast<double>(w.sim.tasks_executed());
        out.unhooked_tasks_per_sec = static_cast<double>(w.sim.tasks_executed()) / s;
        out.unhooked_peak_pending = w.sim.peak_pending();
    }
    {
        sim_workload w(/*thread_count=*/4, /*chains=*/64, hooked_tasks);
        sim::explore::controller ctl({}, sim::explore::controller::tail_policy::random, 7);
        ctl.set_window(20 * sim::us);  // multi-candidate steps without blowup
        ctl.attach(w.sim);
        const auto t0 = clock_type::now();
        w.sim.run(hooked_tasks);
        const double s = seconds_since(t0);
        out.hooked_ns_per_step = s * 1e9 / static_cast<double>(w.sim.tasks_executed());
        out.hooked_steps_per_sec = static_cast<double>(w.sim.tasks_executed()) / s;
        out.hooked_peak_pending = w.sim.peak_pending();
    }
    return out;
}

struct sweep_numbers {
    std::uint64_t schedules = 0;
    std::uint64_t steps = 0;  // tasks executed under the exploration hook
    double seconds = 0;
};

/// Deterministic background load for the sweep: self-reposting task chains on
/// dedicated "page" threads — the busy event loop a real attack page runs
/// against (the Loophole setting the exploration engine exists for). The
/// chains never finish; each schedule is bounded by the trial's task cap.
struct page_load {
    sim::simulation* sim = nullptr;
    std::vector<sim::thread_id> threads;
    std::uint64_t rng = 1;

    void start(sim::simulation& s, int thread_count, int chains, std::uint64_t seed)
    {
        sim = &s;
        rng = seed | 1;
        for (int t = 0; t < thread_count; ++t) {
            threads.push_back(s.create_thread("page" + std::to_string(t)));
        }
        for (int c = 0; c < chains; ++c) {
            s.post(threads[static_cast<std::size_t>(c) % threads.size()], c * sim::us,
                   [this] { step(); }, "page");
        }
    }

    void step()
    {
        sim->consume(1 * sim::us);
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        sim->post(threads[rng % threads.size()],
                  sim->now() + (rng >> 16) % 4 * sim::us, [this] { step(); }, "page");
    }
};

/// The CVE-matrix sweep microbench: every modelled CVE row, plain and under
/// JSKernel, each under `walks` controlled schedules (default first, then
/// seeded random walks) — the inner loop of explore_cve_matrix, owned here
/// so the simulator's step counter is readable. Each exploit is explored on
/// a busy page (`noise_chains` pending background tasks), so scheduling —
/// not browser construction — dominates, and each schedule is capped at
/// `task_cap` explore steps.
sweep_numbers run_cve_matrix_sweep(std::uint64_t walks, std::uint64_t repeats,
                                   int noise_chains, std::uint64_t task_cap)
{
    sweep_numbers out;
    const auto t0 = clock_type::now();
    for (std::uint64_t rep = 0; rep < repeats; ++rep) {
        for (const auto& [cve_id, exploit] : attacks::cve_exploit_table()) {
            for (const bool with_kernel : {false, true}) {
                for (std::uint64_t walk = 0; walk < walks; ++walk) {
                    sim::explore::controller ctl(
                        {},
                        walk == 0 ? sim::explore::controller::tail_policy::first
                                  : sim::explore::controller::tail_policy::random,
                        29 + walk);
                    rt::browser b(rt::chrome_profile(), /*seed=*/17);
                    rt::vuln_registry vulns(b.bus());
                    page_load page;
                    page.start(b.sim(), /*thread_count=*/2, noise_chains,
                               1234 + walk);
                    ctl.attach(b.sim());
                    std::unique_ptr<defenses::defense> def;
                    if (with_kernel) {
                        def = defenses::make_defense(defenses::defense_id::jskernel, 17);
                        def->install(b);
                    }
                    exploit(b);
                    b.run_until(60 * sim::sec, task_cap);
                    out.steps += b.sim().tasks_executed();
                    ++out.schedules;
                }
            }
        }
    }
    out.seconds = seconds_since(t0);
    return out;
}

// --- kernel event queue --------------------------------------------------------

/// The pre-overhaul kernel event queue, verbatim: (predicted, id)-ordered
/// std::map plus an id index. The A/B baseline for the flat-heap rewrite.
class legacy_event_queue {
public:
    void push(kernel::kevent ev)
    {
        const key k{ev.predicted_time, ev.id};
        index_.emplace(ev.id, k);
        order_.emplace(k, std::move(ev));
    }
    kernel::kevent pop()
    {
        auto it = order_.begin();
        kernel::kevent out = std::move(it->second);
        index_.erase(out.id);
        order_.erase(it);
        return out;
    }
    bool remove(std::uint64_t id)
    {
        auto it = index_.find(id);
        if (it == index_.end()) return false;
        order_.erase(it->second);
        index_.erase(it);
        return true;
    }
    bool update_predicted(std::uint64_t id, kernel::ktime predicted)
    {
        auto it = index_.find(id);
        if (it == index_.end()) return false;
        auto node = order_.extract(it->second);
        node.mapped().predicted_time = predicted;
        node.key() = key{predicted, id};
        it->second = node.key();
        order_.insert(std::move(node));
        return true;
    }
    kernel::kevent* lookup(std::uint64_t id)
    {
        auto it = index_.find(id);
        if (it == index_.end()) return nullptr;
        return &order_.find(it->second)->second;
    }
    [[nodiscard]] bool empty() const { return order_.empty(); }
    [[nodiscard]] kernel::ktime next_pending_time() const
    {
        for (const auto& [k, ev] : order_) {
            if (ev.status != kernel::kevent_status::cancelled) return ev.predicted_time;
        }
        return -1.0;
    }

private:
    struct key {
        kernel::ktime predicted;
        std::uint64_t id;
        bool operator<(const key& other) const
        {
            if (predicted != other.predicted) return predicted < other.predicted;
            return id < other.id;
        }
    };
    std::map<key, kernel::kevent> order_;
    std::unordered_map<std::uint64_t, key> index_;
};

/// Cancel one event the way each implementation's scheduler really does it:
/// the flat-heap queue has a tombstone-aware mark_cancelled(); the legacy
/// scheduler wrote status through the lookup() pointer.
template <typename Queue>
void cancel_one(Queue& q, std::uint64_t id)
{
    if constexpr (requires { q.mark_cancelled(id); }) {
        q.mark_cancelled(id);
    } else {
        kernel::kevent* ev = q.lookup(id);
        if (ev != nullptr) {
            ev->status = kernel::kevent_status::cancelled;
            ev->callback = nullptr;
        }
    }
}

/// Identical dispatcher-shaped op mix against either queue implementation:
/// a steady backlog with register / re-predict / cancel churn, a horizon
/// probe every `probe_every` rounds, pops draining cancelled and live heads
/// alike. Returns ns/op.
template <typename Queue>
double run_queue_micro(Queue& q, std::uint64_t rounds, int backlog, int cancels_per_round,
                       int probe_every)
{
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    const auto next_rand = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    std::uint64_t next_id = 1;
    std::uint64_t ops = 0;
    double sink = 0;
    const auto push_one = [&] {
        kernel::kevent ev;
        ev.id = next_id++;
        ev.predicted_time = static_cast<double>(next_rand() % 4096) / 8.0;
        q.push(std::move(ev));
        ++ops;
    };
    const auto t0 = clock_type::now();
    for (int i = 0; i < backlog; ++i) push_one();
    for (std::uint64_t round = 0; round < rounds; ++round) {
        for (int i = 0; i < 8; ++i) push_one();
        for (int i = 0; i < 2; ++i) {
            const std::uint64_t id = next_id - 1 - next_rand() % 8;
            q.update_predicted(id, static_cast<double>(next_rand() % 4096) / 8.0);
            ++ops;
        }
        for (int i = 0; i < cancels_per_round; ++i) {
            cancel_one(q, next_id - 1 - next_rand() % static_cast<std::uint64_t>(backlog));
            ++ops;
        }
        if (probe_every > 0 && round % static_cast<std::uint64_t>(probe_every) == 0) {
            sink += q.next_pending_time();
            ++ops;
        }
        for (int i = 0; i < 8 && !q.empty(); ++i) {
            sink += q.pop().predicted_time;
            ++ops;
        }
    }
    while (!q.empty()) {
        sink += q.pop().predicted_time;
        ++ops;
    }
    const double s = seconds_since(t0);
    if (sink == 0.123456789) std::printf("sink\n");  // defeat dead-code elim
    return s * 1e9 / static_cast<double>(ops);
}

/// Idle-horizon probe storm: a page armed 4096 long timers and cleared the
/// soonest half (clearTimeout), so nothing is due and the dispatcher pops
/// nothing while the worker horizon keeps probing. The legacy map rescans
/// the whole cleared prefix on every next_pending_time(); the flat heap's
/// live view answers in O(1) amortized. Returns ns/op over the setup, the
/// probe loop, and the final drain.
template <typename Queue>
double run_probe_micro(Queue& q, std::uint64_t rounds)
{
    std::uint64_t rng = 0x853c49e6748fea9bull;
    const auto next_rand = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    std::uint64_t next_id = 1;
    std::uint64_t ops = 0;
    double sink = 0;
    // Timers land in [1000, 2024) ms; everything before the 1512 midpoint is
    // cleared, so the cancelled events are exactly the earliest-predicted ones.
    const auto arm_timer = [&] {
        kernel::kevent ev;
        ev.id = next_id++;
        ev.predicted_time = 1000.0 + static_cast<double>(next_rand() % 8192) / 8.0;
        const bool cleared = ev.predicted_time < 1512.0;
        q.push(std::move(ev));
        ++ops;
        if (cleared) {
            cancel_one(q, next_id - 1);
            ++ops;
        }
    };
    const auto t0 = clock_type::now();
    for (int i = 0; i < 4096; ++i) arm_timer();
    for (std::uint64_t round = 0; round < rounds; ++round) {
        arm_timer();
        sink += q.next_pending_time();
        sink += q.next_pending_time();
        ops += 2;
    }
    while (!q.empty()) {
        sink += q.pop().predicted_time;
        ++ops;
    }
    const double s = seconds_since(t0);
    if (sink == 0.123456789) std::printf("sink\n");  // defeat dead-code elim
    return s * 1e9 / static_cast<double>(ops);
}

struct obs_numbers {
    double off_ns_per_task = 0;   // no sink attached (min of `passes`)
    double off_noise_ratio = 0;   // worst/best obs-off pass — measurement noise
    double on_ns_per_task = 0;    // sink attached, recording every task span
    double on_overhead_ratio = 0; // on/off
    std::uint64_t events_recorded = 0;
};

/// The obs-off overhead guard: the instrumentation threaded through the
/// scheduler hot path is one predictable null-pointer branch per site when no
/// sink is attached, so an obs-off run must price the same as the headline
/// numbers above (which also run sinkless — the cross-check is pass-to-pass
/// noise, recorded as off_noise_ratio). The sink-attached pass prices what
/// recording actually costs; it is reported, not bounded.
obs_numbers run_obs_guard(std::uint64_t tasks, int passes)
{
    obs_numbers out;
    double best_off = 0;
    double worst_off = 0;
    for (int p = 0; p < passes; ++p) {
        sim_workload w(/*thread_count=*/4, /*chains=*/64, tasks);
        const auto t0 = clock_type::now();
        w.sim.run(tasks);
        const double ns =
            seconds_since(t0) * 1e9 / static_cast<double>(w.sim.tasks_executed());
        if (p == 0 || ns < best_off) best_off = ns;
        if (p == 0 || ns > worst_off) worst_off = ns;
    }
    out.off_ns_per_task = best_off;
    out.off_noise_ratio = best_off > 0 ? worst_off / best_off : 0;

    double best_on = 0;
    for (int p = 0; p < passes; ++p) {
        sim_workload w(/*thread_count=*/4, /*chains=*/64, tasks);
        obs::sink sink;
        w.sim.set_trace_sink(&sink);
        const auto t0 = clock_type::now();
        w.sim.run(tasks);
        const double ns =
            seconds_since(t0) * 1e9 / static_cast<double>(w.sim.tasks_executed());
        if (p == 0 || ns < best_on) best_on = ns;
        out.events_recorded = sink.size();
    }
    out.on_ns_per_task = best_on;
    out.on_overhead_ratio = best_off > 0 ? best_on / best_off : 0;
    return out;
}

struct faults_numbers {
    double off_ns_per_task = 0;    // no injector attached (min of `passes`)
    double off_noise_ratio = 0;    // worst/best injector-off pass
    double null_ns_per_task = 0;   // null-plan injector attached
    double null_overhead_ratio = 0;  // null/off
};

/// One browser-level ping-pong pass over the fault interposition sites
/// (postMessage both directions is the hottest one). Returns ns/task.
double run_faults_pass(faults::injector* inj, int rounds)
{
    rt::browser b(rt::chrome_profile(), 7);
    if (inj != nullptr) b.set_fault_injector(inj);
    b.register_worker_script("echo.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });
    int remaining = rounds;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("echo.js");
        w->set_onmessage([&remaining, w](const rt::message_event&) {
            if (--remaining > 0) w->post_message(rt::js_value{1.0}, {});
        });
        w->post_message(rt::js_value{1.0}, {});
    });
    const auto t0 = clock_type::now();
    b.run();
    return seconds_since(t0) * 1e9 / static_cast<double>(b.sim().tasks_executed());
}

/// The faults-off overhead guard, mirroring the obs null-sink guard: every
/// interposition site is one `active_faults() == nullptr` branch when no
/// injector is attached, and an attached injector whose plan is null takes
/// the same early-out (`enabled()` is false). Both modes must price like
/// each other; a real fault plan's cost is the plan's business, not bounded
/// here.
faults_numbers run_faults_guard(int rounds, int passes)
{
    faults_numbers out;
    double best_off = 0;
    double worst_off = 0;
    for (int p = 0; p < passes; ++p) {
        const double ns = run_faults_pass(nullptr, rounds);
        if (p == 0 || ns < best_off) best_off = ns;
        if (p == 0 || ns > worst_off) worst_off = ns;
    }
    out.off_ns_per_task = best_off;
    out.off_noise_ratio = best_off > 0 ? worst_off / best_off : 0;

    double best_null = 0;
    for (int p = 0; p < passes; ++p) {
        faults::injector inj{faults::plan{}};  // all rates zero: null plan
        const double ns = run_faults_pass(&inj, rounds);
        if (p == 0 || ns < best_null) best_null = ns;
    }
    out.null_ns_per_task = best_null;
    out.null_overhead_ratio = best_off > 0 ? best_null / best_off : 0;
    return out;
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);

    std::printf("=== scheduling hot paths ===\n\n");

    const sim_numbers sn = run_sim_micro(/*unhooked_tasks=*/400'000,
                                         /*hooked_tasks=*/120'000);
    const sweep_numbers sw = run_cve_matrix_sweep(/*walks=*/4, /*repeats=*/2,
                                                  /*noise_chains=*/192,
                                                  /*task_cap=*/1'500);
    const double sweep_steps_per_sec =
        sw.seconds > 0 ? static_cast<double>(sw.steps) / sw.seconds : 0;

    bench::print_row({"sim metric", "value"}, 34);
    bench::print_rule(2, 34);
    bench::print_row({"unhooked ns/task", bench::fmt(sn.unhooked_ns_per_task)}, 34);
    bench::print_row({"unhooked tasks/sec", bench::fmt(sn.unhooked_tasks_per_sec, 0)}, 34);
    bench::print_row({"unhooked peak pending",
                      std::to_string(sn.unhooked_peak_pending)}, 34);
    bench::print_row({"hooked ns/step", bench::fmt(sn.hooked_ns_per_step)}, 34);
    bench::print_row({"hooked steps/sec", bench::fmt(sn.hooked_steps_per_sec, 0)}, 34);
    bench::print_row({"hooked peak pending", std::to_string(sn.hooked_peak_pending)}, 34);
    bench::print_row({"cve-matrix schedules", std::to_string(sw.schedules)}, 34);
    bench::print_row({"cve-matrix explore steps", std::to_string(sw.steps)}, 34);
    bench::print_row({"cve-matrix seconds", bench::fmt(sw.seconds)}, 34);
    bench::print_row({"cve-matrix steps/sec", bench::fmt(sweep_steps_per_sec, 0)}, 34);

    legacy_event_queue legacy;
    kernel::event_queue current;
    // Warm both (allocator + caches) before the measured passes.
    run_queue_micro(legacy, 2'000, 64, 1, 8);
    run_queue_micro(current, 2'000, 64, 1, 8);
    // Scenario A: dispatcher-depth churn — the backlog the kernel dispatch
    // loop actually carries, light cancellation, occasional horizon probe.
    const double legacy_dispatch_ns = run_queue_micro(legacy, 120'000, 64, 1, 8);
    const double current_dispatch_ns = run_queue_micro(current, 120'000, 64, 1, 8);
    // Scenario B: idle-horizon probe storm over a cleared-timer backlog —
    // the complexity gap the live heap exists for (O(cancelled) scan vs
    // O(1) amortized).
    legacy_event_queue legacy_idle;
    kernel::event_queue current_idle;
    const double legacy_horizon_ns = run_probe_micro(legacy_idle, 4'000);
    const double current_horizon_ns = run_probe_micro(current_idle, 4'000);
    const double dispatch_speedup =
        current_dispatch_ns > 0 ? legacy_dispatch_ns / current_dispatch_ns : 0;
    const double horizon_speedup =
        current_horizon_ns > 0 ? legacy_horizon_ns / current_horizon_ns : 0;

    std::printf("\n");
    bench::print_row({"kernel metric", "value"}, 38);
    bench::print_rule(2, 38);
    bench::print_row({"dispatch ns/op (flat heap)", bench::fmt(current_dispatch_ns)}, 38);
    bench::print_row({"dispatch ns/op (legacy map)", bench::fmt(legacy_dispatch_ns)}, 38);
    bench::print_row({"dispatch speedup (legacy/new)", bench::fmt(dispatch_speedup)}, 38);
    bench::print_row({"idle-horizon ns/op (flat heap)",
                      bench::fmt(current_horizon_ns)}, 38);
    bench::print_row({"idle-horizon ns/op (legacy map)",
                      bench::fmt(legacy_horizon_ns)}, 38);
    bench::print_row({"idle-horizon speedup (legacy/new)",
                      bench::fmt(horizon_speedup)}, 38);

    // obs-off overhead guard: the instrumented hot path with no sink attached
    // must price like the headline run above (also sinkless). Flag a breach
    // only when the measurement itself was stable — pass-to-pass noise above
    // 30% means the machine, not the code, moved.
    const obs_numbers on = run_obs_guard(/*tasks=*/200'000, /*passes=*/3);
    const double off_vs_headline =
        sn.unhooked_ns_per_task > 0 ? on.off_ns_per_task / sn.unhooked_ns_per_task : 0;
    const bool stable = on.off_noise_ratio < 1.3;
    const bool obs_off_within_noise = off_vs_headline < 1.5 || !stable;

    std::printf("\n");
    bench::print_row({"obs metric", "value"}, 38);
    bench::print_rule(2, 38);
    bench::print_row({"obs-off ns/task", bench::fmt(on.off_ns_per_task)}, 38);
    bench::print_row({"obs-off noise (worst/best)", bench::fmt(on.off_noise_ratio)}, 38);
    bench::print_row({"obs-on ns/task", bench::fmt(on.on_ns_per_task)}, 38);
    bench::print_row({"obs-on overhead (on/off)", bench::fmt(on.on_overhead_ratio)}, 38);
    bench::print_row({"events recorded (obs-on)", std::to_string(on.events_recorded)}, 38);
    std::printf("obs-off within noise of headline sim numbers: %s (ratio %.2f)\n",
                obs_off_within_noise ? "yes" : "NO", off_vs_headline);

    // faults null-plan guard: a null-plan injector must price like no
    // injector at all — same gating discipline as the obs guard above.
    const faults_numbers fn = run_faults_guard(/*rounds=*/20'000, /*passes=*/3);
    const bool faults_stable = fn.off_noise_ratio < 1.3;
    const bool faults_within_noise = fn.null_overhead_ratio < 1.5 || !faults_stable;

    std::printf("\n");
    bench::print_row({"faults metric", "value"}, 38);
    bench::print_rule(2, 38);
    bench::print_row({"faults-off ns/task", bench::fmt(fn.off_ns_per_task)}, 38);
    bench::print_row({"faults-off noise (worst/best)", bench::fmt(fn.off_noise_ratio)}, 38);
    bench::print_row({"null-plan ns/task", bench::fmt(fn.null_ns_per_task)}, 38);
    bench::print_row({"null-plan overhead (null/off)",
                      bench::fmt(fn.null_overhead_ratio)}, 38);
    std::printf("null-plan injector within noise of no injector: %s (ratio %.2f)\n",
                faults_within_noise ? "yes" : "NO", fn.null_overhead_ratio);

    if (!json_dir.empty()) {
        bench::json_report sim_report("sim");
        sim_report.set("unhooked_ns_per_task", sn.unhooked_ns_per_task);
        sim_report.set("unhooked_tasks_per_sec", sn.unhooked_tasks_per_sec);
        sim_report.set("unhooked_peak_pending", sn.unhooked_peak_pending);
        sim_report.set("hooked_ns_per_step", sn.hooked_ns_per_step);
        sim_report.set("hooked_steps_per_sec", sn.hooked_steps_per_sec);
        sim_report.set("hooked_peak_pending", sn.hooked_peak_pending);
        sim_report.set("cve_matrix_schedules", sw.schedules);
        sim_report.set("cve_matrix_explore_steps", sw.steps);
        sim_report.set("cve_matrix_seconds", sw.seconds);
        sim_report.set("cve_matrix_steps_per_sec", sweep_steps_per_sec);
        {
            // Counter context for the trajectory: the same workload the
            // timings ran on, re-run at a small size and snapshotted.
            sim_workload w(/*thread_count=*/4, /*chains=*/64, /*total=*/50'000);
            w.sim.run(50'000);
            obs::registry reg;
            obs::collect_sim(reg, w.sim);
            sim_report.set_raw("metrics", reg.to_json());
        }
        sim_report.write(json_dir);

        bench::json_report kernel_report("kernel");
        kernel_report.set("dispatch_ns_per_op", current_dispatch_ns);
        kernel_report.set("dispatch_ns_per_op_legacy_map", legacy_dispatch_ns);
        kernel_report.set("dispatch_speedup_vs_legacy", dispatch_speedup);
        kernel_report.set("idle_horizon_ns_per_op", current_horizon_ns);
        kernel_report.set("idle_horizon_ns_per_op_legacy_map", legacy_horizon_ns);
        kernel_report.set("idle_horizon_speedup_vs_legacy", horizon_speedup);
        kernel_report.set_raw(
            "metrics", bench::representative_metrics_json(defenses::defense_id::jskernel));
        kernel_report.write(json_dir);

        bench::json_report obs_report("obs");
        obs_report.set("obs_off_ns_per_task", on.off_ns_per_task);
        obs_report.set("obs_off_noise_ratio", on.off_noise_ratio);
        obs_report.set("obs_off_vs_headline_ratio", off_vs_headline);
        obs_report.set("obs_on_ns_per_task", on.on_ns_per_task);
        obs_report.set("obs_on_overhead_ratio", on.on_overhead_ratio);
        obs_report.set("events_recorded", on.events_recorded);
        obs_report.set("within_noise", std::uint64_t{obs_off_within_noise ? 1u : 0u});
        obs_report.write(json_dir);

        bench::json_report faults_report("faults");
        faults_report.set("faults_off_ns_per_task", fn.off_ns_per_task);
        faults_report.set("faults_off_noise_ratio", fn.off_noise_ratio);
        faults_report.set("null_plan_ns_per_task", fn.null_ns_per_task);
        faults_report.set("null_plan_overhead_ratio", fn.null_overhead_ratio);
        faults_report.set("within_noise", std::uint64_t{faults_within_noise ? 1u : 0u});
        faults_report.write(json_dir);
    }
    return (obs_off_within_noise && faults_within_noise) ? 0 : 1;
}
