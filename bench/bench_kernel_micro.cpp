// Google-benchmark microbenchmarks of the kernel's hot paths: event-queue
// operations, two-stage scheduling, clock ticks, structured clone. These
// measure *host* C++ time (not simulated time) — the cost of running the
// kernel machinery itself.
#include <benchmark/benchmark.h>

#include "kernel/kernel.h"
#include "runtime/js_value.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;

void bm_event_queue_push_pop(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    std::uint64_t id = 1;
    for (auto _ : state) {
        event_queue q;
        for (std::int64_t i = 0; i < n; ++i) {
            kevent ev;
            ev.id = id++;
            ev.predicted_time = static_cast<ktime>((i * 37) % 1000);
            ev.status = kevent_status::ready;
            q.push(std::move(ev));
        }
        while (!q.empty()) benchmark::DoNotOptimize(q.pop());
    }
    state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(bm_event_queue_push_pop)->Arg(64)->Arg(1024)->Arg(16384);

void bm_event_queue_lookup(benchmark::State& state)
{
    event_queue q;
    for (std::uint64_t i = 1; i <= 4096; ++i) {
        kevent ev;
        ev.id = i;
        ev.predicted_time = static_cast<ktime>(i);
        q.push(std::move(ev));
    }
    std::uint64_t i = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(q.lookup(i % 4096 + 1));
        ++i;
    }
}
BENCHMARK(bm_event_queue_lookup);

void bm_kclock_tick(benchmark::State& state)
{
    kclock clock;
    for (auto _ : state) {
        clock.tick();
        benchmark::DoNotOptimize(clock.display());
    }
}
BENCHMARK(bm_kclock_tick);

void bm_scheduler_register_confirm(benchmark::State& state)
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    for (auto _ : state) {
        state.PauseTiming();
        // Registration/confirmation must run inside a simulated task.
        state.ResumeTiming();
        b.main().post_task(0, [&] {
            const auto id = k->sched().register_event(kevent_type::generic, 1.0, "bench");
            k->sched().confirm(id);
        });
        b.run();
    }
}
BENCHMARK(bm_scheduler_register_confirm);

void bm_structured_clone(benchmark::State& state)
{
    rt::js_object obj;
    for (int i = 0; i < 32; ++i) {
        obj["k" + std::to_string(i)] = rt::js_value{static_cast<double>(i)};
    }
    const rt::js_value value{obj};
    for (auto _ : state) {
        benchmark::DoNotOptimize(rt::structured_clone(value));
    }
}
BENCHMARK(bm_structured_clone);

void bm_simulation_task_throughput(benchmark::State& state)
{
    for (auto _ : state) {
        jsk::sim::simulation sim;
        const auto t = sim.create_thread("bench");
        int remaining = 10'000;
        std::function<void()> loop = [&] {
            sim.consume(100);
            if (--remaining > 0) sim.post(t, sim.now(), loop);
        };
        sim.post(t, 0, loop);
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(bm_simulation_task_throughput);

}  // namespace

BENCHMARK_MAIN();
