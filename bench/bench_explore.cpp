// bench_explore — schedule-search cost of the DPOR + coverage explorer
// (sim/explore.cpp, sim/por.h), recorded per CVE row and on the search-hard
// needle family.
//
//   bench_explore [--json <dir>] [--strict-reduction]
//
// Two very different questions, reported side by side:
//
//  * CVE rows: schedules to the first witness, DPOR off/on x snapshot-backed
//    program off/on. The scripted exploits win their race under the natural
//    schedule, so every cell is 1 — the value of the table is that it stays
//    1 (reduction never delays or loses a CVE witness) and that the
//    snapshot-backed program agrees with the fresh-world one.
//
//  * Needle family (attacks::needle_search_program): a two-flip witness
//    buried under N commuting noise tasks — here search is real. The table
//    records schedules-to-witness for the unreduced DFS vs sleep-set DPOR,
//    the pruned count, and the reduction ratio per noise size, plus
//    coverage-guided vs blind random walks on the same program. The
//    acceptance bar (median DFS ratio >= 10x) is evaluated into
//    `meets_reduction_target`; it gates the exit code only under
//    --strict-reduction so CI tracks it through the artifact instead of
//    failing unrelated PRs.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "attacks/explore_sweep.h"
#include "attacks/wm_litmus.h"
#include "bench/bench_util.h"
#include "core/world.h"
#include "sim/explore.h"
#include "wm/model.h"

namespace {

namespace explore = jsk::sim::explore;

std::string json_key(std::string cve)
{
    for (char& c : cve) {
        if (c == '-') c = '_';
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return cve;
}

struct dfs_cell {
    std::uint64_t to_witness = 0;  // 0 = not found within the budget
    std::uint64_t pruned = 0;
};

dfs_cell run_dfs(const explore::program& p, bool dpor, std::uint64_t budget)
{
    explore::options opt;
    opt.max_schedules = budget;
    opt.dpor = dpor;
    const auto res = explore::explore_dfs(p, opt);
    dfs_cell cell;
    cell.to_witness = res.failing.has_value() ? res.schedules_run : 0;
    cell.pruned = res.pruned;
    return cell;
}

std::uint64_t run_random(const explore::program& p, bool coverage,
                         std::uint64_t budget)
{
    explore::options opt;
    opt.max_schedules = budget;
    opt.seed = 29;
    opt.coverage = coverage;
    const auto res = explore::explore_random(p, opt);
    return res.failing.has_value() ? res.schedules_run : 0;
}

}  // namespace

int main(int argc, char** argv)
{
    bool strict_reduction = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--strict-reduction") == 0) strict_reduction = true;
    }

    jsk::bench::json_report report("explore");
    const bool snapshots = jsk::core::arena::supported();
    report.set("snapshots_available", static_cast<std::uint64_t>(snapshots ? 1 : 0));

    // --- CVE rows: witness preservation, fresh and snapshot-backed ----------
    jsk::bench::print_row({"cve", "dfs", "dfs+dpor", "snap", "snap+dpor"});
    jsk::bench::print_rule(5);
    bool cve_all_found = true;
    bool snap_agrees = true;
    for (const std::string& cve : jsk::attacks::cve_ids()) {
        const auto fresh = jsk::attacks::cve_trigger_program(cve, false);
        const dfs_cell plain = run_dfs(fresh, /*dpor=*/false, 64);
        const dfs_cell reduced = run_dfs(fresh, /*dpor=*/true, 64);
        dfs_cell snap_plain = plain;
        dfs_cell snap_reduced = reduced;
        if (snapshots) {
            const auto snap = jsk::attacks::cve_trigger_program_snap(cve, false);
            snap_plain = run_dfs(snap, /*dpor=*/false, 64);
            snap_reduced = run_dfs(snap, /*dpor=*/true, 64);
        }
        cve_all_found = cve_all_found && plain.to_witness > 0 &&
                        reduced.to_witness > 0;
        snap_agrees = snap_agrees && snap_plain.to_witness == plain.to_witness &&
                      snap_reduced.to_witness == reduced.to_witness;
        const std::string key = json_key(cve);
        report.set(key + "_to_witness", plain.to_witness);
        report.set(key + "_to_witness_dpor", reduced.to_witness);
        report.set(key + "_to_witness_snap", snap_plain.to_witness);
        report.set(key + "_to_witness_snap_dpor", snap_reduced.to_witness);
        jsk::bench::print_row({cve, std::to_string(plain.to_witness),
                               std::to_string(reduced.to_witness),
                               std::to_string(snap_plain.to_witness),
                               std::to_string(snap_reduced.to_witness)});
    }
    report.set("cve_all_witnesses_found",
               static_cast<std::uint64_t>(cve_all_found ? 1 : 0));
    report.set("cve_snapshot_agrees", static_cast<std::uint64_t>(snap_agrees ? 1 : 0));

    // --- needle family: where search is real --------------------------------
    std::printf("\n");
    jsk::bench::print_row({"noise", "dfs", "dfs+dpor", "pruned", "ratio"});
    jsk::bench::print_rule(5);
    std::vector<double> ratios;
    bool needle_all_found = true;
    for (const int noise : {4, 6, 8, 10, 12}) {
        const auto program = jsk::attacks::needle_search_program(noise);
        const dfs_cell plain = run_dfs(program, /*dpor=*/false, 100'000);
        const dfs_cell reduced = run_dfs(program, /*dpor=*/true, 100'000);
        needle_all_found = needle_all_found && plain.to_witness > 0 &&
                           reduced.to_witness > 0;
        const double ratio = reduced.to_witness > 0
                                 ? static_cast<double>(plain.to_witness) /
                                       static_cast<double>(reduced.to_witness)
                                 : 0.0;
        ratios.push_back(ratio);
        const std::string key = "needle" + std::to_string(noise);
        report.set(key + "_to_witness", plain.to_witness);
        report.set(key + "_to_witness_dpor", reduced.to_witness);
        report.set(key + "_pruned_dpor", reduced.pruned);
        report.set(key + "_ratio", ratio);
        jsk::bench::print_row({std::to_string(noise), std::to_string(plain.to_witness),
                               std::to_string(reduced.to_witness),
                               std::to_string(reduced.pruned),
                               jsk::bench::fmt(ratio, 1)});
    }
    std::sort(ratios.begin(), ratios.end());
    const double median_ratio = ratios[ratios.size() / 2];
    report.set("needle_median_ratio", median_ratio);
    report.set("needle_all_witnesses_found",
               static_cast<std::uint64_t>(needle_all_found ? 1 : 0));

    // Coverage-guided vs blind random walks on the buried witness.
    const auto needle8 = jsk::attacks::needle_search_program(8);
    const std::uint64_t blind = run_random(needle8, /*coverage=*/false, 4'000);
    const std::uint64_t guided = run_random(needle8, /*coverage=*/true, 4'000);
    report.set("needle8_random_to_witness", blind);
    report.set("needle8_random_to_witness_coverage", guided);
    std::printf("\nneedle8 random walks to witness: blind=%llu coverage=%llu "
                "(0 = not found in 4000)\n",
                static_cast<unsigned long long>(blind),
                static_cast<unsigned long long>(guided));

    const bool meets = cve_all_found && needle_all_found && median_ratio >= 10.0;
    report.set("meets_reduction_target", static_cast<std::uint64_t>(meets ? 1 : 0));
    std::printf("median DFS reduction ratio: %.1fx (target >= 10x: %s)\n",
                median_ratio, meets ? "met" : "NOT met");

    // --- relaxed vs seqcst: the second search axis --------------------------
    // Per litmus program: schedules to exhaust the seqcst tree (the cost of
    // the "provably unreachable" half) vs schedules to the relaxed witness,
    // plain and under DPOR. Non-gating — tracked through the artifact.
    std::printf("\n");
    jsk::bench::print_row(
        {"litmus", "seqcst-exhaust", "relaxed", "relaxed+dpor"});
    jsk::bench::print_rule(4);
    bool wm_all_found = true;
    const std::vector<
        std::pair<std::string, std::function<explore::program(jsk::wm::mode)>>>
        litmus = {
            {"sb", [](jsk::wm::mode m) { return jsk::attacks::sb_litmus_program(m); }},
            {"mp", [](jsk::wm::mode m) { return jsk::attacks::mp_litmus_program(m); }},
            {"torn",
             [](jsk::wm::mode m) { return jsk::attacks::torn_counter_program(m); }},
        };
    for (const auto& [name, make] : litmus) {
        explore::options sc_opt;
        sc_opt.max_schedules = 100'000;
        const auto sc = explore::explore_dfs(make(jsk::wm::mode::seqcst), sc_opt);
        const dfs_cell relaxed =
            run_dfs(make(jsk::wm::mode::relaxed), /*dpor=*/false, 100'000);
        const dfs_cell relaxed_dpor =
            run_dfs(make(jsk::wm::mode::relaxed), /*dpor=*/true, 100'000);
        wm_all_found = wm_all_found && !sc.failing.has_value() && sc.exhausted &&
                       relaxed.to_witness > 0 && relaxed_dpor.to_witness > 0;
        report.set(name + "_seqcst_exhaust_schedules", sc.schedules_run);
        report.set(name + "_relaxed_to_witness", relaxed.to_witness);
        report.set(name + "_relaxed_to_witness_dpor", relaxed_dpor.to_witness);
        jsk::bench::print_row({name, std::to_string(sc.schedules_run),
                               std::to_string(relaxed.to_witness),
                               std::to_string(relaxed_dpor.to_witness)});
    }
    report.set("wm_relaxed_witnesses_found",
               static_cast<std::uint64_t>(wm_all_found ? 1 : 0));

    const std::string dir = jsk::bench::json_out_dir(argc, argv);
    if (!dir.empty()) report.write(dir);

    if (!cve_all_found || !snap_agrees) return 1;  // trust before speed
    if (strict_reduction && !meets) return 1;
    return 0;
}
