// Figure 3: CDF of loading time of Top-500 (synthetic) websites under the
// eight browser configurations the paper plots.
//
// Prints the CDF at decile points per configuration plus summary statistics.
// Paper shape: JSKernel curves hug their base browsers (minimal overhead);
// Chrome Zero is visibly slower than Chrome+JSKernel; Tor and Fuzzyfox are
// the slowest; DeterFox tracks Firefox.
#include <cstdio>

#include "bench/bench_obs.h"
#include "bench/bench_util.h"
#include "defenses/defense.h"
#include "sim/stats.h"
#include "workloads/sites.h"

using namespace jsk;

namespace {

struct config_row {
    std::string label;
    rt::browser_profile profile;
    defenses::defense_id defense;
};

std::vector<double> load_all(const config_row& cfg, int sites, std::uint64_t seed)
{
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(sites));
    for (int rank = 0; rank < sites; ++rank) {
        rt::browser b(cfg.profile, seed + static_cast<std::uint64_t>(rank));
        auto def = defenses::make_defense(cfg.defense, seed + static_cast<std::uint64_t>(rank));
        def->install(b);
        const auto site =
            workloads::make_synthetic_site(static_cast<std::uint64_t>(rank), 42);
        times.push_back(workloads::load_site(b, site).onload_ms);
    }
    return times;
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    const int sites = 500;
    const std::vector<config_row> configs{
        {"chrome", rt::chrome_profile(), defenses::defense_id::legacy},
        {"chrome+jskernel", rt::chrome_profile(), defenses::defense_id::jskernel},
        {"chrome+chromezero", rt::chrome_profile(), defenses::defense_id::chrome_zero},
        {"firefox", rt::firefox_profile(), defenses::defense_id::legacy},
        {"firefox+jskernel", rt::firefox_profile(), defenses::defense_id::jskernel},
        {"deterfox", rt::firefox_profile(), defenses::defense_id::deterfox},
        {"tor-browser", rt::firefox_profile(), defenses::defense_id::tor_browser},
        {"fuzzyfox", rt::firefox_profile(), defenses::defense_id::fuzzyfox},
    };

    std::printf("=== Figure 3: load-time CDF, %d synthetic Alexa-like sites ===\n\n", sites);
    std::vector<std::string> header{"config"};
    for (int pct = 10; pct <= 90; pct += 20) {
        header.push_back("p" + std::to_string(pct) + "(ms)");
    }
    header.push_back("mean(ms)");
    bench::print_row(header, 19);
    bench::print_rule(header.size(), 19);

    double chrome_mean = 0.0;
    double chrome_jsk_mean = 0.0;
    double chrome_cz_mean = 0.0;
    for (const auto& cfg : configs) {
        const auto times = load_all(cfg, sites, 9'000);
        std::vector<std::string> row{cfg.label};
        for (int pct = 10; pct <= 90; pct += 20) {
            row.push_back(bench::fmt(sim::percentile(times, pct), 1));
        }
        const double mean = sim::summarize(times).mean;
        row.push_back(bench::fmt(mean, 1));
        bench::print_row(row, 19);
        if (cfg.label == "chrome") chrome_mean = mean;
        if (cfg.label == "chrome+jskernel") chrome_jsk_mean = mean;
        if (cfg.label == "chrome+chromezero") chrome_cz_mean = mean;
    }

    const double jsk_overhead = (chrome_jsk_mean / chrome_mean - 1.0) * 100.0;
    const double cz_overhead = (chrome_cz_mean / chrome_mean - 1.0) * 100.0;
    std::printf("\nchrome+jskernel overhead vs chrome: %.2f%% (paper: non-observable)\n",
                jsk_overhead);
    std::printf("chrome+chromezero overhead vs chrome: %.2f%% (paper: more than JSKernel)\n",
                cz_overhead);
    const bool ok = jsk_overhead < cz_overhead && jsk_overhead < 10.0;
    std::printf("shape holds (jskernel < chromezero, jskernel small): %s\n",
                ok ? "yes" : "NO");
    if (!json_dir.empty()) {
        bench::json_report report("fig3");
        report.set("chrome_mean_ms", chrome_mean);
        report.set("chrome_jskernel_mean_ms", chrome_jsk_mean);
        report.set("chrome_chromezero_mean_ms", chrome_cz_mean);
        report.set("jskernel_overhead_pct", jsk_overhead);
        report.set("chromezero_overhead_pct", cz_overhead);
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return ok ? 0 : 1;
}
