// Table III: Average website loading time in Raptor-tp6-1.
//
// Hero-element load time, 25 loads per subtest (the paper skips the first;
// we have no tab-open effect, so all 25 count), for Chrome and Firefox with
// and without JSKernel. Load-to-load variation comes from per-run seeds
// (network jitter via the synthetic site's server latencies is deterministic,
// so variance here is defense-jitter only; legacy rows are near-constant).
#include <cstdio>

#include "bench/bench_obs.h"
#include "bench/bench_util.h"
#include "defenses/defense.h"
#include "sim/stats.h"
#include "workloads/sites.h"

using namespace jsk;

namespace {

sim::summary run_subtest(const rt::browser_profile& profile, defenses::defense_id defense,
                         const std::string& site_name, int loads)
{
    std::vector<double> hero;
    for (int i = 0; i < loads; ++i) {
        rt::browser b(profile, 4'000 + static_cast<std::uint64_t>(i));
        auto def = defenses::make_defense(defense, 4'000 + static_cast<std::uint64_t>(i));
        def->install(b);
        // Per-load network jitter, as on the paper's ADSL line.
        auto site = workloads::raptor_site(site_name, profile.name);
        sim::rng jitter(9'000 + static_cast<std::uint64_t>(i));
        for (auto& res : site.resources) {
            res.server_latency = jitter.uniform(0, 4 * sim::ms);
        }
        hero.push_back(workloads::load_site(b, site).hero_ms);
    }
    return sim::summarize(hero);
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    const int loads = 25;
    const std::vector<std::string> subtests{"amazon", "facebook", "google", "youtube"};

    std::printf("=== Table III: Raptor-tp6-1 hero-element load time (ms), %d loads ===\n\n",
                loads);
    bench::print_row({"subtest", "chrome", "jskernel(C)", "firefox", "jskernel(F)"}, 17);
    bench::print_rule(5, 17);

    bool overhead_small = true;
    bench::json_report report("table3");
    for (const auto& name : subtests) {
        const auto chrome = run_subtest(rt::chrome_profile(), defenses::defense_id::legacy,
                                        name, loads);
        const auto chrome_jsk =
            run_subtest(rt::chrome_profile(), defenses::defense_id::jskernel, name, loads);
        const auto firefox = run_subtest(rt::firefox_profile(),
                                         defenses::defense_id::legacy, name, loads);
        const auto firefox_jsk =
            run_subtest(rt::firefox_profile(), defenses::defense_id::jskernel, name, loads);
        bench::print_row({name, bench::fmt_pm(chrome.mean, chrome.stddev),
                          bench::fmt_pm(chrome_jsk.mean, chrome_jsk.stddev),
                          bench::fmt_pm(firefox.mean, firefox.stddev),
                          bench::fmt_pm(firefox_jsk.mean, firefox_jsk.stddev)},
                         17);
        // Paper: differences smaller than the noise / a few percent.
        if (chrome_jsk.mean > chrome.mean * 1.15 || firefox_jsk.mean > firefox.mean * 1.15) {
            overhead_small = false;
        }
        report.set(name + "_chrome_ms", chrome.mean);
        report.set(name + "_chrome_jskernel_ms", chrome_jsk.mean);
        report.set(name + "_firefox_ms", firefox.mean);
        report.set(name + "_firefox_jskernel_ms", firefox_jsk.mean);
    }
    std::printf("\njskernel hero-load overhead stays within 15%% on every subtest: %s "
                "(paper: 2.75%% Chrome / 3.85%% Firefox average)\n",
                overhead_small ? "yes" : "NO");
    if (!json_dir.empty()) {
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return overhead_small ? 0 : 1;
}
