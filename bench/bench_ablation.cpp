// Ablations on the kernel's design decisions (DESIGN.md §4):
//  1. deterministic vs fuzzy prediction — how much security does Listing 3's
//     determinism buy over a fuzzy-time kernel?
//  2. CVE policies on/off — the scheduling core alone already blocks the
//     worker-lifecycle CVEs; the manual policies cover the remaining four.
//  3. interposition-cost sweep — sensitivity of the Dromaeo overhead.
#include <cstdio>

#include "attacks/attacks_impl.h"
#include "bench/bench_obs.h"
#include "bench/bench_util.h"
#include "sim/stats.h"
#include "workloads/sites.h"

using namespace jsk;

namespace {

/// Script-parsing attack accuracy with a custom-configured kernel.
double parsing_accuracy(kernel::kernel_options opts, int trials)
{
    std::vector<double> small;
    std::vector<double> big_sample;
    for (int t = 0; t < trials; ++t) {
        for (const bool big : {false, true}) {
            rt::browser b(rt::chrome_profile(), 3'000 + static_cast<std::uint64_t>(t));
            opts.fuzz_seed = 100 + static_cast<std::uint64_t>(t) * 2 + big;
            auto def = defenses::make_jskernel_defense(opts);
            def->install(b);
            attacks::script_parsing atk;
            (big ? big_sample : small)
                .push_back(atk.measure_size(b, big ? 5'000'000 : 1'000'000));
        }
    }
    return sim::classification_accuracy(small, big_sample);
}

double dom_attr_overhead(const kernel::kernel_options& opts)
{
    rt::browser base(rt::chrome_profile());
    const double t_base = workloads::run_dromaeo_test(base, "dom-attr").duration_ms;
    rt::browser with(rt::chrome_profile());
    auto def = defenses::make_jskernel_defense(opts);
    def->install(with);
    const double t_kernel = workloads::run_dromaeo_test(with, "dom-attr").duration_ms;
    return t_base > 0 ? (t_kernel / t_base - 1.0) * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    std::printf("=== Ablation 1: prediction strategy vs attack accuracy ===\n\n");
    bench::print_row({"prediction", "parsing-accuracy"}, 20);
    bench::print_rule(2, 20);
    const kernel::kernel_options det;
    const double det_acc = parsing_accuracy(det, 7);
    bench::print_row({"deterministic", bench::fmt(det_acc, 2)}, 20);
    kernel::kernel_options fuzzy;
    fuzzy.fuzzy_prediction = true;
    const double fuzzy_acc = parsing_accuracy(fuzzy, 7);
    bench::print_row({"fuzzy (ablation)", bench::fmt(fuzzy_acc, 2)}, 20);
    std::printf("(deterministic must sit at chance level 0.5; fuzzy may drift)\n");

    std::printf("\n=== Ablation 2: CVE policies on/off ===\n\n");
    bench::print_row({"config", "CVEs-triggered/12"}, 22);
    bench::print_rule(2, 22);
    kernel::kernel_options with_policies;
    const int with = attacks::run_cve_suite_with_kernel(with_policies);
    bench::print_row({"scheduler+policies", std::to_string(with)}, 22);
    kernel::kernel_options without_policies;
    without_policies.enable_cve_policies = false;
    const int without = attacks::run_cve_suite_with_kernel(without_policies);
    bench::print_row({"scheduler-only", std::to_string(without)}, 22);
    std::printf("(the termination protocol alone blocks the worker-lifecycle CVEs;\n"
                " the four leak/storage CVEs need their manual policies)\n");

    std::printf("\n=== Ablation 3: interposition cost vs worst-case (dom-attr) overhead "
                "===\n\n");
    bench::print_row({"interpose(ns)", "dom-attr-overhead(%)"}, 22);
    bench::print_rule(2, 22);
    for (const long cost : {0L, 50L, 200L, 1000L}) {
        kernel::kernel_options opts;
        opts.interpose_cost = cost;
        bench::print_row({std::to_string(cost), bench::fmt(dom_attr_overhead(opts), 2)}, 22);
    }

    const bool ok = det_acc <= 0.55 && with == 0 && without > 0 && without <= 6;
    std::printf("\nablation expectations hold: %s\n", ok ? "yes" : "NO");
    if (!json_dir.empty()) {
        bench::json_report report("ablation");
        report.set("deterministic_parsing_accuracy", det_acc);
        report.set("fuzzy_parsing_accuracy", fuzzy_acc);
        report.set("cves_triggered_with_policies", static_cast<std::uint64_t>(with));
        report.set("cves_triggered_scheduler_only", static_cast<std::uint64_t>(without));
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return ok ? 0 : 1;
}
