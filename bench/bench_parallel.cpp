// bench_parallel — wall-clock of the sharded sweep driver (jsk::par) against
// its own serial path, on the two production sweeps: the CVE-matrix
// random-walk sweep and the chaos (CVE x defense x plan) matrix.
//
//   bench_parallel [walks] [--jobs N] [--json <dir>] [--strict-speedup]
//                  [--snapshot on|off]
//
// Every timed run is byte-compared against the serial aggregate first —
// a speedup over output we can't trust is not a speedup, and a mismatch
// always exits nonzero. BENCH_parallel.json records jobs, detected cores,
// per-sweep serial/parallel wall-clock and speedup, plus the witness-cache
// recall time for a warm re-sweep. The acceptance bar (>= 3x on >= 4 cores)
// is evaluated and recorded as `meets_speedup_target` (reported as met when
// not applicable: < 4 cores or < 4 jobs), but it only gates the exit code
// under --strict-speedup — shared CI runners are a handful of noisy vCPUs,
// so the bar is tracked through the uploaded artifact there instead of
// failing unrelated PRs.
//
// --snapshot on|off selects whether the sweeps above serve trials from
// jsk::core world snapshots (on, the default) or build a fresh world per
// trial — invoking both ways A/Bs the whole pipeline. Independently, a
// fork-vs-fresh microbench on a page-session world (synthetic sites
// preloaded to quiescence) records fork_trials_per_sec /
// fresh_trials_per_sec and their ratio; the >= 5x bar is recorded as
// `meets_snapshot_target` but never gates the exit code (world assembly
// cost — and with it the ratio — varies with the host).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/chaos_sweep.h"
#include "attacks/explore_sweep.h"
#include "bench/bench_util.h"
#include "par/cache.h"
#include "core/world.h"
#include "par/pool.h"

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0)
{
    return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv)
{
    std::uint64_t walks = 8;
    std::size_t jobs = jsk::par::default_jobs();
    bool strict_speedup = false;
    bool snapshots = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            ++i;  // consumed by json_out_dir
        } else if (std::strcmp(argv[i], "--strict-speedup") == 0) {
            strict_speedup = true;
        } else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
            snapshots = std::strcmp(argv[++i], "off") != 0;
        } else {
            walks = std::strtoull(argv[i], nullptr, 10);
        }
    }
    if (jobs == 0) jobs = jsk::par::default_jobs();
    const std::size_t cores = jsk::par::default_jobs();
    snapshots = snapshots && jsk::core::arena::supported();

    jsk::bench::json_report report("parallel");
    report.set("jobs", static_cast<std::uint64_t>(jobs));
    report.set("cores_detected", static_cast<std::uint64_t>(cores));
    report.set("walks_per_cell", walks);
    report.set("snapshots", static_cast<std::uint64_t>(snapshots ? 1 : 0));

    // --- CVE-matrix sweep ---------------------------------------------------
    jsk::attacks::matrix_options mopt;
    mopt.explore.seed = 101;
    mopt.snapshots = snapshots;

    mopt.jobs = 1;
    auto t0 = clock_type::now();
    const auto serial_rows = jsk::attacks::explore_cve_matrix(walks, mopt);
    const double matrix_serial_ms = ms_since(t0);
    const std::string serial_json = jsk::attacks::cve_matrix_json(serial_rows);

    mopt.jobs = jobs;
    t0 = clock_type::now();
    const auto par_rows = jsk::attacks::explore_cve_matrix(walks, mopt);
    const double matrix_parallel_ms = ms_since(t0);
    const bool matrix_identical = jsk::attacks::cve_matrix_json(par_rows) == serial_json;

    // Warm-cache recall: same sweep again with every witness already cached.
    jsk::par::result_cache<jsk::attacks::cve_trial_outcome> cache;
    mopt.cache = &cache;
    (void)jsk::attacks::explore_cve_matrix(walks, mopt);
    t0 = clock_type::now();
    const auto cached_rows = jsk::attacks::explore_cve_matrix(walks, mopt);
    const double matrix_cached_ms = ms_since(t0);
    const bool cached_identical = jsk::attacks::cve_matrix_json(cached_rows) == serial_json;
    const auto cache_stats = cache.snapshot();

    const double matrix_speedup =
        matrix_parallel_ms > 0.0 ? matrix_serial_ms / matrix_parallel_ms : 0.0;
    report.set("matrix_serial_ms", matrix_serial_ms);
    report.set("matrix_parallel_ms", matrix_parallel_ms);
    report.set("matrix_speedup", matrix_speedup);
    report.set("matrix_identical", static_cast<std::uint64_t>(matrix_identical ? 1 : 0));
    report.set("matrix_cached_ms", matrix_cached_ms);
    report.set("cache_hits", cache_stats.hits);
    report.set("cache_misses", cache_stats.misses);
    report.set("cache_entries", cache_stats.entries);
    report.set("cached_identical", static_cast<std::uint64_t>(cached_identical ? 1 : 0));

    // --- chaos matrix -------------------------------------------------------
    const auto cells = jsk::attacks::default_chaos_cells(/*cves=*/4, /*plans=*/4);
    jsk::attacks::chaos_matrix_options copt;
    copt.snapshots = snapshots;

    copt.jobs = 1;
    t0 = clock_type::now();
    const auto chaos_serial = jsk::attacks::run_chaos_matrix(cells, copt);
    const double chaos_serial_ms = ms_since(t0);
    const std::string chaos_serial_json = jsk::attacks::chaos_matrix_json(chaos_serial);

    copt.jobs = jobs;
    t0 = clock_type::now();
    const auto chaos_par = jsk::attacks::run_chaos_matrix(cells, copt);
    const double chaos_parallel_ms = ms_since(t0);
    const bool chaos_identical =
        jsk::attacks::chaos_matrix_json(chaos_par) == chaos_serial_json;

    const double chaos_speedup =
        chaos_parallel_ms > 0.0 ? chaos_serial_ms / chaos_parallel_ms : 0.0;
    report.set("chaos_cells", static_cast<std::uint64_t>(cells.size()));
    report.set("chaos_serial_ms", chaos_serial_ms);
    report.set("chaos_parallel_ms", chaos_parallel_ms);
    report.set("chaos_speedup", chaos_speedup);
    report.set("chaos_identical", static_cast<std::uint64_t>(chaos_identical ? 1 : 0));

    // --- fork vs fresh on a page-session world ------------------------------
    // The shape snapshots exist for: a world with preloaded site sessions,
    // where per-trial assembly dwarfs the trial itself. Fresh = build the
    // world every trial; fork = seal it once, restore per trial. The trials
    // are first byte-compared, then timed.
    double fork_trials_per_sec = 0.0;
    double fresh_trials_per_sec = 0.0;
    double snapshot_ratio = 0.0;
    bool snapshot_identical = true;
    if (jsk::core::arena::supported()) {
        jsk::attacks::cve_trial_spec spec;
        spec.cve = jsk::attacks::cve_ids().front();
        spec.site_ranks = {0, 1, 2, 3};
        const jsk::attacks::cve_walk_spec walk;
        constexpr int k_trials = 64;

        auto snap = jsk::core::snapshot_world(jsk::attacks::cve_world_recipe(spec));
        const auto fresh_out = jsk::attacks::run_cve_trial_fresh(spec, walk);
        const auto fork_out = jsk::attacks::run_cve_trial_forked(*snap, spec, walk);
        snapshot_identical = fork_out.triggered == fresh_out.triggered &&
                             fork_out.decisions == fresh_out.decisions;

        t0 = clock_type::now();
        for (int i = 0; i < k_trials; ++i) {
            (void)jsk::attacks::run_cve_trial_fresh(spec, walk);
        }
        const double fresh_ms = ms_since(t0);
        t0 = clock_type::now();
        for (int i = 0; i < k_trials; ++i) {
            (void)jsk::attacks::run_cve_trial_forked(*snap, spec, walk);
        }
        const double fork_ms = ms_since(t0);

        fresh_trials_per_sec = fresh_ms > 0.0 ? k_trials * 1000.0 / fresh_ms : 0.0;
        fork_trials_per_sec = fork_ms > 0.0 ? k_trials * 1000.0 / fork_ms : 0.0;
        snapshot_ratio = fork_ms > 0.0 ? fresh_ms / fork_ms : 0.0;
    }
    const bool meets_snapshot = !jsk::core::arena::supported() || snapshot_ratio >= 5.0;
    report.set("fork_trials_per_sec", fork_trials_per_sec);
    report.set("fresh_trials_per_sec", fresh_trials_per_sec);
    report.set("snapshot_ratio", snapshot_ratio);
    report.set("snapshot_identical",
               static_cast<std::uint64_t>(snapshot_identical ? 1 : 0));
    report.set("meets_snapshot_target",
               static_cast<std::uint64_t>(meets_snapshot ? 1 : 0));

    // Acceptance: >= 3x on >= 4 cores (on the bigger of the two sweeps). On
    // fewer cores there is nothing to assert — record the bar as met so the
    // artifact diff stays quiet on small machines.
    const double best_speedup = matrix_speedup > chaos_speedup ? matrix_speedup
                                                               : chaos_speedup;
    const bool meets = cores < 4 || jobs < 4 || best_speedup >= 3.0;
    report.set("meets_speedup_target", static_cast<std::uint64_t>(meets ? 1 : 0));

    jsk::bench::print_row({"sweep", "serial ms", "par ms", "speedup", "identical"});
    jsk::bench::print_rule(5);
    jsk::bench::print_row({"cve-matrix", jsk::bench::fmt(matrix_serial_ms),
                           jsk::bench::fmt(matrix_parallel_ms),
                           jsk::bench::fmt(matrix_speedup),
                           matrix_identical ? "yes" : "NO"});
    jsk::bench::print_row({"cve-cached", "-", jsk::bench::fmt(matrix_cached_ms), "-",
                           cached_identical ? "yes" : "NO"});
    jsk::bench::print_row({"chaos", jsk::bench::fmt(chaos_serial_ms),
                           jsk::bench::fmt(chaos_parallel_ms),
                           jsk::bench::fmt(chaos_speedup),
                           chaos_identical ? "yes" : "NO"});
    std::printf("jobs=%zu cores=%zu snapshots=%s cache: %llu hits / %llu misses\n",
                jobs, cores, snapshots ? "on" : "off",
                static_cast<unsigned long long>(cache_stats.hits),
                static_cast<unsigned long long>(cache_stats.misses));
    if (jsk::core::arena::supported()) {
        std::printf("fork vs fresh (page-session world): %.0f vs %.0f trials/s "
                    "(%.1fx, target >=5x %s, identical %s)\n",
                    fork_trials_per_sec, fresh_trials_per_sec, snapshot_ratio,
                    meets_snapshot ? "met" : "MISSED",
                    snapshot_identical ? "yes" : "NO");
    } else {
        std::printf("fork vs fresh: n/a (no arena support)\n");
    }
    if (cores >= 4 && jobs >= 4) {
        std::printf("speedup target (>=3x on >=4 cores): %s (best %.2fx)\n",
                    meets ? "met" : "MISSED", best_speedup);
    } else {
        std::printf("speedup target: n/a (%zu cores, %zu jobs)\n", cores, jobs);
    }

    report.write(jsk::bench::json_out_dir(argc, argv));

    const bool sound = matrix_identical && cached_identical && chaos_identical &&
                       snapshot_identical;
    return sound && (meets || !strict_speedup) ? 0 : 1;
}
