// bench_parallel — wall-clock of the sharded sweep driver (jsk::par) against
// its own serial path, on the two production sweeps: the CVE-matrix
// random-walk sweep and the chaos (CVE x defense x plan) matrix.
//
//   bench_parallel [walks] [--jobs N] [--json <dir>] [--strict-speedup]
//
// Every timed run is byte-compared against the serial aggregate first —
// a speedup over output we can't trust is not a speedup, and a mismatch
// always exits nonzero. BENCH_parallel.json records jobs, detected cores,
// per-sweep serial/parallel wall-clock and speedup, plus the witness-cache
// recall time for a warm re-sweep. The acceptance bar (>= 3x on >= 4 cores)
// is evaluated and recorded as `meets_speedup_target` (reported as met when
// not applicable: < 4 cores or < 4 jobs), but it only gates the exit code
// under --strict-speedup — shared CI runners are a handful of noisy vCPUs,
// so the bar is tracked through the uploaded artifact there instead of
// failing unrelated PRs.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/chaos_sweep.h"
#include "attacks/explore_sweep.h"
#include "bench/bench_util.h"
#include "par/cache.h"
#include "par/pool.h"

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0)
{
    return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv)
{
    std::uint64_t walks = 8;
    std::size_t jobs = jsk::par::default_jobs();
    bool strict_speedup = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            ++i;  // consumed by json_out_dir
        } else if (std::strcmp(argv[i], "--strict-speedup") == 0) {
            strict_speedup = true;
        } else {
            walks = std::strtoull(argv[i], nullptr, 10);
        }
    }
    if (jobs == 0) jobs = jsk::par::default_jobs();
    const std::size_t cores = jsk::par::default_jobs();

    jsk::bench::json_report report("parallel");
    report.set("jobs", static_cast<std::uint64_t>(jobs));
    report.set("cores_detected", static_cast<std::uint64_t>(cores));
    report.set("walks_per_cell", walks);

    // --- CVE-matrix sweep ---------------------------------------------------
    jsk::attacks::matrix_options mopt;
    mopt.explore.seed = 101;

    mopt.jobs = 1;
    auto t0 = clock_type::now();
    const auto serial_rows = jsk::attacks::explore_cve_matrix(walks, mopt);
    const double matrix_serial_ms = ms_since(t0);
    const std::string serial_json = jsk::attacks::cve_matrix_json(serial_rows);

    mopt.jobs = jobs;
    t0 = clock_type::now();
    const auto par_rows = jsk::attacks::explore_cve_matrix(walks, mopt);
    const double matrix_parallel_ms = ms_since(t0);
    const bool matrix_identical = jsk::attacks::cve_matrix_json(par_rows) == serial_json;

    // Warm-cache recall: same sweep again with every witness already cached.
    jsk::par::result_cache<jsk::attacks::cve_trial_outcome> cache;
    mopt.cache = &cache;
    (void)jsk::attacks::explore_cve_matrix(walks, mopt);
    t0 = clock_type::now();
    const auto cached_rows = jsk::attacks::explore_cve_matrix(walks, mopt);
    const double matrix_cached_ms = ms_since(t0);
    const bool cached_identical = jsk::attacks::cve_matrix_json(cached_rows) == serial_json;
    const auto cache_stats = cache.snapshot();

    const double matrix_speedup =
        matrix_parallel_ms > 0.0 ? matrix_serial_ms / matrix_parallel_ms : 0.0;
    report.set("matrix_serial_ms", matrix_serial_ms);
    report.set("matrix_parallel_ms", matrix_parallel_ms);
    report.set("matrix_speedup", matrix_speedup);
    report.set("matrix_identical", static_cast<std::uint64_t>(matrix_identical ? 1 : 0));
    report.set("matrix_cached_ms", matrix_cached_ms);
    report.set("cache_hits", cache_stats.hits);
    report.set("cache_misses", cache_stats.misses);
    report.set("cache_entries", cache_stats.entries);
    report.set("cached_identical", static_cast<std::uint64_t>(cached_identical ? 1 : 0));

    // --- chaos matrix -------------------------------------------------------
    const auto cells = jsk::attacks::default_chaos_cells(/*cves=*/4, /*plans=*/4);
    jsk::attacks::chaos_matrix_options copt;

    copt.jobs = 1;
    t0 = clock_type::now();
    const auto chaos_serial = jsk::attacks::run_chaos_matrix(cells, copt);
    const double chaos_serial_ms = ms_since(t0);
    const std::string chaos_serial_json = jsk::attacks::chaos_matrix_json(chaos_serial);

    copt.jobs = jobs;
    t0 = clock_type::now();
    const auto chaos_par = jsk::attacks::run_chaos_matrix(cells, copt);
    const double chaos_parallel_ms = ms_since(t0);
    const bool chaos_identical =
        jsk::attacks::chaos_matrix_json(chaos_par) == chaos_serial_json;

    const double chaos_speedup =
        chaos_parallel_ms > 0.0 ? chaos_serial_ms / chaos_parallel_ms : 0.0;
    report.set("chaos_cells", static_cast<std::uint64_t>(cells.size()));
    report.set("chaos_serial_ms", chaos_serial_ms);
    report.set("chaos_parallel_ms", chaos_parallel_ms);
    report.set("chaos_speedup", chaos_speedup);
    report.set("chaos_identical", static_cast<std::uint64_t>(chaos_identical ? 1 : 0));

    // Acceptance: >= 3x on >= 4 cores (on the bigger of the two sweeps). On
    // fewer cores there is nothing to assert — record the bar as met so the
    // artifact diff stays quiet on small machines.
    const double best_speedup = matrix_speedup > chaos_speedup ? matrix_speedup
                                                               : chaos_speedup;
    const bool meets = cores < 4 || jobs < 4 || best_speedup >= 3.0;
    report.set("meets_speedup_target", static_cast<std::uint64_t>(meets ? 1 : 0));

    jsk::bench::print_row({"sweep", "serial ms", "par ms", "speedup", "identical"});
    jsk::bench::print_rule(5);
    jsk::bench::print_row({"cve-matrix", jsk::bench::fmt(matrix_serial_ms),
                           jsk::bench::fmt(matrix_parallel_ms),
                           jsk::bench::fmt(matrix_speedup),
                           matrix_identical ? "yes" : "NO"});
    jsk::bench::print_row({"cve-cached", "-", jsk::bench::fmt(matrix_cached_ms), "-",
                           cached_identical ? "yes" : "NO"});
    jsk::bench::print_row({"chaos", jsk::bench::fmt(chaos_serial_ms),
                           jsk::bench::fmt(chaos_parallel_ms),
                           jsk::bench::fmt(chaos_speedup),
                           chaos_identical ? "yes" : "NO"});
    std::printf("jobs=%zu cores=%zu cache: %llu hits / %llu misses\n", jobs, cores,
                static_cast<unsigned long long>(cache_stats.hits),
                static_cast<unsigned long long>(cache_stats.misses));
    if (cores >= 4 && jobs >= 4) {
        std::printf("speedup target (>=3x on >=4 cores): %s (best %.2fx)\n",
                    meets ? "met" : "MISSED", best_speedup);
    } else {
        std::printf("speedup target: n/a (%zu cores, %zu jobs)\n", cores, jobs);
    }

    report.write(jsk::bench::json_out_dir(argc, argv));

    const bool sound = matrix_identical && cached_identical && chaos_identical;
    return sound && (meets || !strict_speedup) ? 0 : 1;
}
