// Shared obs-metrics embedding for the bench binaries.
//
// Every BENCH_*.json carries a "metrics" field so counter context (queue
// depth highwater, compactions, candidate-window sizes, trigger counts)
// accretes next to the timings. Most benches construct and destroy many
// short-lived worlds inside their measurement loops; rather than thread a
// registry through each of them, they embed the snapshot of one
// *representative* world — a synthetic site loaded under the bench's
// headline defense with CVE monitors attached — collected the same way
// trace_cli does it.
#pragma once

#include <cstdint>
#include <string>

#include "defenses/defense.h"
#include "defenses/defenses_impl.h"
#include "obs/collect.h"
#include "obs/metrics.h"
#include "runtime/browser.h"
#include "runtime/profile.h"
#include "runtime/vuln.h"
#include "workloads/sites.h"

namespace jsk::bench {

/// Collect sim + kernel (when the defense installed one) + vuln metrics from
/// an already-run world into JSON.
inline std::string world_metrics_json(rt::browser& b, defenses::defense* def,
                                      const rt::vuln_registry* vulns = nullptr)
{
    obs::registry reg;
    obs::collect_sim(reg, b.sim());
    if (auto* jskd = dynamic_cast<defenses::jskernel_defense*>(def)) {
        if (jskd->installed_kernel() != nullptr) {
            obs::collect_kernel(reg, *jskd->installed_kernel());
        }
    }
    if (vulns != nullptr) obs::collect_vulns(reg, *vulns);
    return reg.to_json();
}

/// Metrics snapshot of one representative world: a synthetic site loaded on
/// the Chrome profile under `def_id`, with the CVE monitors attached.
/// Deterministic for a fixed seed.
inline std::string representative_metrics_json(defenses::defense_id def_id,
                                               std::uint64_t seed = 17)
{
    rt::browser b(rt::chrome_profile(), seed);
    rt::vuln_registry vulns(b.bus());
    auto def = defenses::make_defense(def_id, seed);
    def->install(b);
    workloads::load_site(b, workloads::make_synthetic_site(seed, 42));
    return world_metrics_json(b, def.get(), &vulns);
}

}  // namespace jsk::bench
