// Table I: Evaluation of Defenses against Web Concurrency Attacks.
//
// Runs every attack row under every defense column and prints the prevention
// matrix (D = defended, V = vulnerable), annotated with the expected verdict
// reconstructed from the paper's prose (see DESIGN.md). "legacy" covers the
// paper's "Legacy Three" column (same verdict for Chrome/Firefox/Edge — the
// timing attacks run on the Chrome profile here; bench_table2 exercises the
// per-browser profiles).
#include <cstdio>

#include "attacks/attack.h"
#include "attacks/expected.h"
#include "bench/bench_obs.h"
#include "bench/bench_util.h"

using namespace jsk;

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    const auto defenses_list = defenses::all_defense_ids();
    std::printf("=== Table I: defenses vs web concurrency attacks ===\n");
    std::printf("cell: measured verdict (D=defended, V=vulnerable); '!' = differs from "
                "the reconstruction in attacks/expected.h\n\n");

    std::vector<std::string> header{"attack"};
    for (const auto id : defenses_list) header.push_back(defenses::to_string(id));
    bench::print_row(header, 16);
    bench::print_rule(header.size(), 16);

    int mismatches = 0;
    std::string family;
    for (auto& atk : attacks::all_attacks()) {
        if (atk->family() != family) {
            family = atk->family();
            std::printf("-- %s --\n", family.c_str());
        }
        std::vector<std::string> row{atk->name()};
        for (const auto id : defenses_list) {
            attacks::run_config config;
            config.defense = id;
            config.trials = 7;
            config.seed = 23;
            const auto outcome = atk->run(config);
            const bool expected = attacks::expected_prevented(atk->name(), id);
            std::string cell = outcome.prevented ? "D" : "V";
            if (!outcome.is_cve) cell += " (acc " + bench::fmt(outcome.accuracy, 2) + ")";
            if (outcome.prevented != expected) {
                cell += " !";
                ++mismatches;
            }
            row.push_back(cell);
        }
        bench::print_row(row, 16);
    }
    std::printf("\nmismatches vs expected matrix: %d / 132\n", mismatches);
    if (!json_dir.empty()) {
        bench::json_report report("table1");
        report.set("matrix_cells", std::uint64_t{132});
        report.set("mismatches", static_cast<std::uint64_t>(mismatches));
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return mismatches == 0 ? 0 : 1;
}
