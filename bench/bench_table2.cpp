// Table II: Averaged measured time of different targets under varied attacks.
//
//  * SVG filtering: averaged measured image load (frame) time for a low- vs
//    high-resolution cross-origin image under an erode filter, 25 runs each.
//  * Loopscan: maximum measured event interval while a google- vs
//    youtube-like victim shares the event loop.
//
// Rows: the three legacy browser profiles, then each defense (on the Chrome
// profile), mirroring the paper's row set.
#include <cstdio>

#include "attacks/attacks_impl.h"
#include "bench/bench_obs.h"
#include "bench/bench_util.h"
#include "sim/stats.h"

using namespace jsk;

namespace {

struct row_config {
    std::string label;
    rt::browser_profile profile;
    defenses::defense_id defense;
};

double avg_svg(const row_config& row, std::uint32_t dim, int runs)
{
    std::vector<double> xs;
    for (int r = 0; r < runs; ++r) {
        rt::browser b(row.profile, 100 + static_cast<std::uint64_t>(r));
        auto def = defenses::make_defense(row.defense, 500 + static_cast<std::uint64_t>(r));
        def->install(b);
        attacks::svg_filtering atk;
        xs.push_back(atk.measure_resolution(b, dim));
    }
    return sim::summarize(xs).mean;
}

double avg_loopscan(const row_config& row, bool youtube, int runs)
{
    std::vector<double> xs;
    for (int r = 0; r < runs; ++r) {
        rt::browser b(row.profile, 200 + static_cast<std::uint64_t>(r));
        auto def = defenses::make_defense(row.defense, 700 + static_cast<std::uint64_t>(r));
        def->install(b);
        attacks::loopscan atk;
        const auto victim = youtube ? workloads::youtube_event_profile()
                                    : workloads::google_event_profile();
        xs.push_back(atk.max_event_interval(b, victim));
    }
    return sim::summarize(xs).mean;
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    const int runs = 25;  // as in the paper
    std::vector<row_config> rows{
        {"chrome", rt::chrome_profile(), defenses::defense_id::legacy},
        {"firefox", rt::firefox_profile(), defenses::defense_id::legacy},
        {"edge", rt::edge_profile(), defenses::defense_id::legacy},
        {"fuzzyfox", rt::firefox_profile(), defenses::defense_id::fuzzyfox},
        {"tor-browser", rt::firefox_profile(), defenses::defense_id::tor_browser},
        {"chrome-zero", rt::chrome_profile(), defenses::defense_id::chrome_zero},
        {"jskernel", rt::chrome_profile(), defenses::defense_id::jskernel},
    };

    std::printf("=== Table II: SVG filtering & loopscan, averaged over %d runs ===\n\n",
                runs);
    bench::print_row({"defense", "svg-low(ms)", "svg-high(ms)", "loop-google(ms)",
                      "loop-youtube(ms)"},
                     17);
    bench::print_rule(5, 17);

    bool jskernel_constant = true;
    bench::json_report report("table2");
    for (const auto& row : rows) {
        const double lo = avg_svg(row, 64, runs);
        const double hi = avg_svg(row, 512, runs);
        const double google = avg_loopscan(row, false, runs);
        const double youtube = avg_loopscan(row, true, runs);
        bench::print_row({row.label, bench::fmt(lo), bench::fmt(hi), bench::fmt(google),
                          bench::fmt(youtube)},
                         17);
        if (row.defense == defenses::defense_id::jskernel) {
            jskernel_constant = (lo == hi) && (google == youtube);
        }
        report.set(row.label + "_svg_low_ms", lo);
        report.set(row.label + "_svg_high_ms", hi);
        report.set(row.label + "_loopscan_google_ms", google);
        report.set(row.label + "_loopscan_youtube_ms", youtube);
    }
    std::printf("\njskernel columns constant across secrets: %s (paper: 10/10 ms SVG, "
                "1/1 ms loopscan)\n",
                jskernel_constant ? "yes" : "NO");
    if (!json_dir.empty()) {
        report.set("jskernel_constant", std::uint64_t{jskernel_constant ? 1u : 0u});
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return jskernel_constant ? 0 : 1;
}
