// §V-B2 semi-automated compatibility test: visit each of 100 synthetic sites
// with and without JSKernel, serialize the DOM, compare via cosine
// similarity. Paper: 90 % of sites score above 99 %; the rest differ only
// through dynamic content (ads), which differ between *any* two visits.
#include <cstdio>

#include "bench/bench_obs.h"
#include "bench/bench_util.h"
#include "defenses/defense.h"
#include "sim/stats.h"
#include "workloads/sites.h"

using namespace jsk;

namespace {

std::unordered_map<std::string, double> visit(std::uint64_t site, bool with_kernel,
                                              std::uint64_t visit_seed)
{
    rt::browser b(rt::chrome_profile(), visit_seed);
    std::unique_ptr<defenses::defense> def;
    if (with_kernel) {
        def = defenses::make_defense(defenses::defense_id::jskernel);
        def->install(b);
    }
    // ~10% of sites carry dynamic ad slots whose URLs differ per visit.
    const bool dynamic = site % 10 == 0;
    return workloads::build_compat_page(b, 1'000 + site * 17 + (dynamic ? visit_seed : 0),
                                        dynamic);
}

}  // namespace

int main(int argc, char** argv)
{
    const std::string json_dir = bench::json_out_dir(argc, argv);
    const int sites = 100;
    int above_99 = 0;
    int dynamic_flagged = 0;
    double min_sim = 1.0;
    for (int site = 0; site < sites; ++site) {
        const auto plain = visit(static_cast<std::uint64_t>(site), false, 1);
        const auto kernel = visit(static_cast<std::uint64_t>(site), true, 2);
        const double similarity = sim::cosine_similarity(plain, kernel);
        min_sim = std::min(min_sim, similarity);
        if (similarity > 0.99) {
            ++above_99;
        } else {
            // Manual-check stand-in: a plain/plain revisit is below the
            // threshold too — the delta is dynamic content, not JSKernel
            // (the paper's "less than 2% difference" control).
            const auto replain = visit(static_cast<std::uint64_t>(site), false, 3);
            const double control = sim::cosine_similarity(plain, replain);
            if (control < 0.99) ++dynamic_flagged;
        }
    }
    std::printf("=== Compatibility: DOM cosine similarity over %d sites ===\n\n", sites);
    std::printf("sites with similarity > 99%%: %d/%d (paper: 90%%)\n", above_99, sites);
    std::printf("below-threshold sites explained by dynamic content: %d/%d\n",
                dynamic_flagged, sites - above_99);
    std::printf("minimum similarity: %.4f\n", min_sim);
    const bool ok = above_99 >= 85 && dynamic_flagged == sites - above_99;
    std::printf("shape holds: %s\n", ok ? "yes" : "NO");
    if (!json_dir.empty()) {
        bench::json_report report("compat");
        report.set("sites_above_99pct", static_cast<std::uint64_t>(above_99));
        report.set("dynamic_flagged", static_cast<std::uint64_t>(dynamic_flagged));
        report.set("min_similarity", min_sim);
        report.set_raw("metrics",
                       bench::representative_metrics_json(defenses::defense_id::jskernel));
        report.write(json_dir);
    }
    return ok ? 0 : 1;
}
