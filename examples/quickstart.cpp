// Quickstart: boot a simulated browser, install JSKernel, and watch the
// kernel schedule ordinary page activity.
//
//   $ ./examples/quickstart
//
// The demo runs the same little page twice — once on the plain browser, once
// with the kernel installed — and prints what the page observes. Note how
// under JSKernel performance.now() reports kernel time (ticks), not physical
// time, while the page's behaviour (timer order, fetch results) is unchanged.
#include <cstdio>

#include "kernel/kernel.h"
#include "runtime/browser.h"

using namespace jsk;
namespace sim = jsk::sim;

namespace {

void run_page(rt::browser& b, const char* label)
{
    b.net().serve(rt::resource{"https://app.example/data.json", "https://app.example",
                               rt::resource_kind::data, 24'000, 0, 0, 0});
    b.set_page_origin("https://app.example");

    std::printf("--- %s ---\n", label);
    b.main().post_task(0, [&b] {
        auto& apis = b.main().apis();
        std::printf("  page start: performance.now() = %.3f ms\n", apis.performance_now());

        apis.set_timeout(
            [&b] {
                std::printf("  timer A (10 ms) fired at now()=%.3f\n",
                            b.main().apis().performance_now());
            },
            10 * sim::ms);
        apis.set_timeout(
            [&b] {
                std::printf("  timer B (5 ms) fired at now()=%.3f\n",
                            b.main().apis().performance_now());
            },
            5 * sim::ms);

        apis.fetch(
            "https://app.example/data.json", {},
            [&b](const rt::fetch_result& r) {
                std::printf("  fetch resolved: %zu bytes, now()=%.3f\n", r.bytes,
                            b.main().apis().performance_now());
            },
            nullptr);
    });
    b.run();
    std::printf("  (physical simulated time elapsed: %.3f ms)\n\n",
                sim::to_ms(b.sim().now()));
}

}  // namespace

int main()
{
    {
        rt::browser plain(rt::chrome_profile());
        run_page(plain, "plain chrome");
    }
    {
        rt::browser protected_browser(rt::chrome_profile());
        auto kernel = kernel::kernel::boot(protected_browser);
        run_page(protected_browser, "chrome + jskernel");
        std::printf("kernel stats: %llu API calls interposed, %llu events dispatched\n",
                    static_cast<unsigned long long>(kernel->api_calls()),
                    static_cast<unsigned long long>(kernel->events_dispatched()));
    }
    return 0;
}
