// chaos_cli — run one CVE exploit (or a seeded random program) under an
// active fault plan, with JSKernel's hardening armed, and write the run's
// Chrome trace artifact.
//
//   chaos_cli [cve|program:<seed>] [plan] [out.trace.json] [browser_seed]
//   chaos_cli matrix [cves] [plans] [--jobs N] [--json]
//   chaos_cli --list
//
// `plan` is either a sample index (an integer: faults::plan::sample(i),
// cycling perturb/network/worker/channel/full chaos), or a full `key=value;`
// plan string as printed by plan::str() — so a failure line from the chaos
// sweep can be pasted back verbatim. Defaults: CVE-2018-5092 under sample
// plan 1 (network chaos), written to "<target>.chaos.trace.json".
//
// `matrix` shards the (CVE x defense x plan) product over the jsk::par
// driver (--jobs 0/omitted = hardware concurrency, 1 = serial) and merges in
// canonical cell order, so the table — and the --json aggregate — is
// byte-identical for every jobs count. Cache stats print to stderr at exit.
//
// Both forms accept `--memory-model seqcst|relaxed` (default seqcst); the
// model is applied to every trial world, stamped into witness-cache keys
// ("+relaxed" program tag) and recorded in `--json` aggregates.
//
// The run is deterministic: same arguments, byte-identical trace. The
// summary line reports what the kernel had to absorb (injected faults,
// watchdog cancellations, fetch retries) and whether the monitor fired.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "attacks/attacks_impl.h"
#include "attacks/chaos_sweep.h"
#include "faults/plan.h"
#include "par/cache.h"
#include "wm/model.h"

namespace {

namespace jk = jsk;

int run_matrix(std::size_t cves, std::size_t plans, std::size_t jobs, bool as_json,
               jk::wm::mode model)
{
    const auto cells = jk::attacks::default_chaos_cells(cves, plans);
    jk::par::result_cache<jk::attacks::chaos_cell_result> cache;
    jk::attacks::chaos_matrix_options opt;
    opt.jobs = jobs;
    opt.cache = &cache;
    opt.trial.model = model;
    const auto m = jk::attacks::run_chaos_matrix(cells, opt);
    const auto stats = cache.snapshot();
    std::cerr << "cache: " << stats.hits << " hits, " << stats.misses
              << " misses, " << stats.entries << " entries\n";
    if (as_json) {
        std::cout << jk::attacks::chaos_matrix_json(m, model) << "\n";
        return 0;
    }
    std::cout << "cve             defense   plan#  trig  tasks    faults  wdog  retries\n";
    bool live = true;
    for (std::size_t i = 0; i < m.results.size(); ++i) {
        const auto& cell = m.cells[i];
        const auto& r = m.results[i];
        live = live && !r.hit_task_cap;
        std::printf("%-15s %-9s %-6zu %-5s %-8llu %-7llu %-5llu %llu%s\n",
                    cell.cve.c_str(), cell.with_jskernel ? "jskernel" : "plain",
                    i % (plans == 0 ? 1 : plans), r.triggered ? "YES" : "no",
                    static_cast<unsigned long long>(r.tasks_executed),
                    static_cast<unsigned long long>(r.faults_injected),
                    static_cast<unsigned long long>(r.watchdog_fires),
                    static_cast<unsigned long long>(r.fetch_retries),
                    r.hit_task_cap ? "  <-- HIT TASK CAP" : "");
    }
    std::cout << (live ? "no cell exhausted the task cap\n"
                       : "LIVENESS violation — see rows above\n");
    return live ? 0 : 1;
}

int list_choices()
{
    std::cout << "CVEs:\n";
    for (const auto& [id, fn] : jk::attacks::cve_exploit_table()) {
        std::cout << "  " << id << "\n";
    }
    std::cout << "plans (sample indices; any index is valid):\n";
    for (std::uint64_t i = 0; i < 5; ++i) {
        std::cout << "  " << i << ": " << jk::faults::plan::sample(i).str() << "\n";
    }
    std::cout << "or pass a full key=value; plan string.\n";
    return 0;
}

jk::faults::plan parse_plan_arg(const std::string& arg)
{
    if (arg.find('=') != std::string::npos) return jk::faults::plan::parse(arg);
    return jk::faults::plan::sample(std::strtoull(arg.c_str(), nullptr, 10));
}

/// Strip --memory-model from (argc, argv)-style args; returns false (after
/// printing) on an unknown model name.
bool strip_memory_model(std::vector<std::string>& args, jk::wm::mode& model)
{
    std::vector<std::string> kept;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        std::string name;
        if (arg == "--memory-model" && i + 1 < args.size()) {
            name = args[++i];
        } else if (arg.rfind("--memory-model=", 0) == 0) {
            name = arg.substr(15);
        } else {
            kept.push_back(arg);
            continue;
        }
        const auto parsed = jk::wm::parse_mode(name);
        if (!parsed) {
            std::cerr << "unknown memory model '" << name << "' (want seqcst|relaxed)\n";
            return false;
        }
        model = *parsed;
    }
    args = std::move(kept);
    return true;
}

}  // namespace

int main(int argc, char** argv)
{
    if (argc > 1 && std::string(argv[1]) == "--list") return list_choices();
    if (argc > 1 && std::string(argv[1]) == "matrix") {
        std::size_t jobs = 0;
        bool as_json = false;
        jk::wm::mode model = jk::wm::mode::seqcst;
        std::vector<std::string> args;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--json") {
                as_json = true;
            } else if (arg == "--jobs" && i + 1 < argc) {
                jobs = std::strtoull(argv[++i], nullptr, 10);
            } else if (arg.rfind("--jobs=", 0) == 0) {
                jobs = std::strtoull(arg.c_str() + 7, nullptr, 10);
            } else {
                args.push_back(arg);
            }
        }
        if (!strip_memory_model(args, model)) return 2;
        const std::size_t cves =
            !args.empty() ? std::strtoull(args[0].c_str(), nullptr, 10) : 3;
        const std::size_t plans =
            args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 3;
        try {
            return run_matrix(cves, plans, jobs, as_json, model);
        } catch (const std::exception& e) {
            std::cerr << "matrix failed: " << e.what() << "\n";
            return 2;
        }
    }
    jk::wm::mode model = jk::wm::mode::seqcst;
    std::vector<std::string> rest;
    for (int i = 1; i < argc; ++i) rest.push_back(argv[i]);
    if (!strip_memory_model(rest, model)) return 2;
    if (!rest.empty() && rest[0].rfind("--", 0) == 0) {
        std::cerr << "usage: chaos_cli [cve|program:<seed>] [plan] [out.trace.json]"
                     " [browser_seed] [--memory-model seqcst|relaxed]\n"
                     "       chaos_cli matrix [cves] [plans] [--jobs N] [--json]\n"
                     "       chaos_cli --list\n";
        return 2;
    }

    const std::string target = !rest.empty() ? rest[0] : "CVE-2018-5092";
    const std::string plan_arg = rest.size() > 1 ? rest[1] : "1";
    std::string out_path = rest.size() > 2 ? rest[2] : target + ".chaos.trace.json";
    for (char& c : out_path) {
        if (c == ':') c = '_';  // "program:3" -> filesystem-safe default name
    }
    const std::uint64_t browser_seed =
        rest.size() > 3 ? std::strtoull(rest[3].c_str(), nullptr, 10) : 17;

    jk::faults::plan plan;
    try {
        plan = parse_plan_arg(plan_arg);
    } catch (const std::exception& e) {
        std::cerr << "bad plan: " << e.what() << "\n";
        return 2;
    }

    jk::attacks::chaos_options copt;
    copt.model = model;
    jk::attacks::chaos_trial_result result;
    try {
        if (target.rfind("program:", 0) == 0) {
            const std::uint64_t program_seed =
                std::strtoull(target.c_str() + 8, nullptr, 10);
            result = jk::attacks::run_chaos_program(program_seed, /*with_jskernel=*/true,
                                                    plan, browser_seed, copt);
        } else {
            result = jk::attacks::run_chaos_trial(target, /*with_jskernel=*/true, plan,
                                                  browser_seed, copt);
        }
    } catch (const std::exception& e) {
        std::cerr << "trial failed: " << e.what() << " (try --list)\n";
        return 2;
    }

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 2;
    }
    out << result.trace_json;
    out.close();

    std::printf("target:            %s\n", target.c_str());
    std::printf("plan:              %s\n", plan.str().c_str());
    std::printf("monitor triggered: %s\n", result.triggered ? "YES" : "no");
    std::printf("tasks executed:    %llu%s\n",
                static_cast<unsigned long long>(result.tasks_executed),
                result.hit_task_cap ? "  (HIT TASK CAP — liveness bug)" : "");
    std::printf("faults injected:   %llu\n",
                static_cast<unsigned long long>(result.faults_injected));
    std::printf("watchdog fires:    %llu\n",
                static_cast<unsigned long long>(result.watchdog_fires));
    std::printf("fetch retries:     %llu\n",
                static_cast<unsigned long long>(result.fetch_retries));
    std::printf("trace:             %s (load in ui.perfetto.dev)\n", out_path.c_str());
    return result.hit_task_cap ? 1 : 0;
}
