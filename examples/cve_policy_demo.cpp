// Listing 2 + Listing 4 end-to-end: the CVE-2018-5092 use-after-free.
//
// Trigger condition (three interleaved JavaScript functions across threads):
//   1. a fetch starts in a worker,
//   2. the worker is falsely terminated, freeing the in-flight request,
//   3. page teardown sends an abort signal to the freed request.
//
// On the vulnerable engine the monitor fires; with JSKernel installed the
// thread manager's termination handshake (the kernel half of the Listing-4
// policy) keeps the kernel worker alive until the fetch settles, so the
// freed-request state never exists.
#include <cstdio>

#include "kernel/kernel.h"
#include "runtime/browser.h"
#include "runtime/vuln.h"

using namespace jsk;
namespace sim = jsk::sim;

namespace {

bool run_exploit(bool with_kernel)
{
    rt::browser b(rt::chrome_profile());
    rt::vuln_registry vulns(b.bus());
    std::unique_ptr<kernel::kernel> k;
    if (with_kernel) k = kernel::kernel::boot(b);

    b.net().serve(rt::resource{"https://attacker.example/fetchedfile0.html",
                               "https://attacker.example", rt::resource_kind::data, 100'000,
                               0, 0, 0});

    // worker.js (Listing 2 lines 1-6): fetch with an abort signal.
    b.register_worker_script("worker.js", [](rt::context& ctx) {
        rt::abort_controller ctl;
        rt::fetch_options opts;
        opts.signal = ctl.signal;
        ctx.apis().fetch(
            "https://attacker.example/fetchedfile0.html", opts,
            [](const rt::fetch_result&) { std::printf("    worker: fetch resolved\n"); },
            [](const rt::fetch_result&) { std::printf("    worker: fetch aborted\n"); });
    });

    // Main script (Listing 2 lines 7-11): spawn, falsely terminate, reload.
    b.main().post_task(0, [&b] {
        auto w = b.main().apis().create_worker("worker.js");
        b.main().apis().set_timeout(
            [w] {
                std::printf("    main: terminating worker (fetch still in flight)\n");
                w->terminate();
            },
            5 * sim::ms);
        b.main().apis().set_timeout(
            [&b] {
                std::printf("    main: reloading (teardown aborts all fetches)\n");
                b.main().apis().reload();
            },
            10 * sim::ms);
    });
    b.run_until(10 * sim::sec);

    const auto* monitor = vulns.find("CVE-2018-5092");
    return monitor != nullptr && monitor->triggered();
}

}  // namespace

int main()
{
    std::printf("=== CVE-2018-5092: use-after-free via fetch/terminate/abort ===\n\n");
    std::printf("[plain chrome]\n");
    const bool plain = run_exploit(false);
    std::printf("  use-after-free triggered: %s\n\n", plain ? "YES (exploitable)" : "no");
    std::printf("[chrome + jskernel]\n");
    const bool kernel = run_exploit(true);
    std::printf("  use-after-free triggered: %s\n", kernel ? "YES" : "no (defended)");
    return plain && !kernel ? 0 : 1;
}
