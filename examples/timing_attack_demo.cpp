// Listing 1 end-to-end: the worker-postMessage implicit clock.
//
// A worker floods postMessage while the main thread waits for a secret
// operation (here: a cross-origin resource whose server think-time is the
// secret). The adversary counts onmessage deliveries between start and
// completion — a clock no API redefinition can remove, because it is the
// *interleaving* of two functions across threads.
//
// Run it and compare: on the plain browser the count tracks the secret; with
// JSKernel installed the count is identical for both secrets.
#include <cstdio>

#include "kernel/kernel.h"
#include "runtime/browser.h"

using namespace jsk;
namespace sim = jsk::sim;

namespace {

int measure_secret(bool with_kernel, sim::time_ns secret)
{
    rt::browser b(rt::chrome_profile());
    std::unique_ptr<kernel::kernel> k;
    if (with_kernel) k = kernel::kernel::boot(b);

    b.net().serve(rt::resource{"https://victim.example/op", "https://victim.example",
                               rt::resource_kind::data, 512, 0, 0, secret});

    // worker.js (Listing 1 lines 1-5): for(i=0..BIG) postMessage(i)
    b.register_worker_script("worker.js", [](rt::context& ctx) {
        ctx.apis().set_interval(
            [&ctx] { ctx.apis().post_message_to_parent(rt::js_value{1}, {}); },
            1 * sim::ms);
    });

    auto count = std::make_shared<int>(0);
    auto during = std::make_shared<int>(-1);
    b.main().post_task(0, [&b, count, during] {
        auto w = b.main().apis().create_worker("worker.js");
        w->set_onmessage([count](const rt::message_event&) { ++*count; });
        // Main script (Listing 1 lines 6-14): run the secret operation and
        // count ticks until it completes.
        b.main().apis().fetch(
            "https://victim.example/op", {},
            [during, count, w](const rt::fetch_result&) {
                *during = *count;
                w->terminate();
            },
            nullptr);
    });
    b.run_until(10 * sim::sec);
    return *during;
}

}  // namespace

int main()
{
    std::printf("=== Listing 1: worker postMessage as an implicit clock ===\n\n");
    for (const bool with_kernel : {false, true}) {
        const int fast = measure_secret(with_kernel, 20 * sim::ms);
        const int slow = measure_secret(with_kernel, 200 * sim::ms);
        std::printf("%-18s onmessage count: secret=20ms -> %3d   secret=200ms -> %3d   %s\n",
                    with_kernel ? "chrome+jskernel:" : "plain chrome:", fast, slow,
                    fast == slow ? "(indistinguishable — defended)"
                                 : "(leaks the secret!)");
    }
    return 0;
}
