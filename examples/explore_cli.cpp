// explore_cli — command-line driver for the schedule-exploration engine.
//
//   explore_cli matrix [walks]             random-walk sweep of the CVE matrix
//   explore_cli find <cve> [walks] [seed]  hunt a plain-browser triggering
//                                          schedule, shrink it, replay it
//   explore_cli replay <cve> <decisions>   replay one decision string against
//                                          a plain-browser exploit run
//   explore_cli audit <program-seed> [n]   journal invariance of a random
//                                          program across n schedules
//
// `matrix` accepts `--jobs N` (0 or omitted = hardware concurrency, 1 = the
// serial path) and `--json` (dump the canonical aggregate instead of the
// table). Output is byte-identical for every jobs count. Cache hit/miss
// stats print to stderr at exit.
//
// Every mode accepts `--memory-model seqcst|relaxed` (default seqcst — the
// historical strongly-consistent behaviour; relaxed turns unordered SAB
// reads into explorer-steered reads-from choices). The model is recorded in
// `--json` output and in witness-cache keys ("+relaxed" program tag).
//
// Decision strings are the compact base-36 form printed by the other modes
// ("021…", "{n}" for indices >= 36); an empty string replays the default
// schedule.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "attacks/explore_sweep.h"
#include "defenses/schedule_audit.h"
#include "par/cache.h"
#include "sim/explore.h"
#include "wm/model.h"

namespace {

namespace explore = jsk::sim::explore;

int usage()
{
    std::cerr << "usage: explore_cli matrix [walks] [--jobs N] [--json]\n"
                 "       explore_cli find <cve> [walks] [seed]\n"
                 "       explore_cli replay <cve> <decisions>\n"
                 "       explore_cli audit <program-seed> [schedules]\n"
                 "flags: --memory-model seqcst|relaxed (default seqcst)\n";
    return 2;
}

int run_matrix(std::uint64_t walks, std::size_t jobs, bool as_json, jsk::wm::mode model)
{
    jsk::par::result_cache<jsk::attacks::cve_trial_outcome> cache;
    jsk::attacks::matrix_options opt;
    opt.explore.seed = 101;
    opt.jobs = jobs;
    opt.cache = &cache;
    opt.model = model;
    const auto rows = jsk::attacks::explore_cve_matrix(walks, opt);
    const auto stats = cache.snapshot();
    std::cerr << "cache: " << stats.hits << " hits, " << stats.misses
              << " misses, " << stats.entries << " entries\n";
    if (as_json) {
        std::cout << jsk::attacks::cve_matrix_json(rows, model) << "\n";
        return 0;
    }
    std::cout << "cve             plain(trig/run)  jskernel(trig/run)  witness\n";
    bool table_holds = true;
    for (const auto& row : rows) {
        const bool ok = row.plain_triggered > 0 && row.kernel_triggered == 0;
        table_holds = table_holds && ok;
        std::cout << row.cve << "   " << row.plain_triggered << "/"
                  << row.plain_schedules << "  " << row.kernel_triggered << "/"
                  << row.kernel_schedules << "  "
                  << (row.witness ? "\"" + row.witness->str() + "\"" : "-")
                  << (ok ? "" : "   <-- FALSIFIED") << "\n";
    }
    std::cout << (table_holds ? "Table I holds under every explored schedule\n"
                              : "Table I FALSIFIED — see rows above\n");
    return table_holds ? 0 : 1;
}

int run_find(const std::string& cve, std::uint64_t walks, std::uint64_t seed,
             jsk::wm::mode model)
{
    explore::options opt;
    opt.max_schedules = walks;
    opt.seed = seed;
    const auto program =
        jsk::attacks::cve_trigger_program(cve, /*with_jskernel=*/false, 17, model);
    const auto found = explore::explore_random(program, opt);
    if (!found.failing) {
        std::cout << cve << ": no triggering schedule in " << found.schedules_run
                  << " walks (try more walks or another seed)\n";
        return 1;
    }
    std::cout << cve << ": triggered by schedule \"" << found.failing->str() << "\" ("
              << found.failing->preemptions() << " preemptions)\n";

    auto shrunk = explore::shrink(*found.failing, program, opt);
    std::cout << "shrunk to \"" << shrunk.str() << "\" (" << shrunk.preemptions()
              << " preemptions)\n";

    const auto replayed = explore::replay(shrunk, program);
    std::cout << "replay: " << (replayed.violated ? "still triggers" : "LOST the trigger")
              << "\n";
    std::cout << "reproduce with: explore_cli replay " << cve << " \"" << shrunk.str()
              << "\"\n";
    return replayed.violated ? 0 : 1;
}

int run_replay(const std::string& cve, const std::string& decisions,
               jsk::wm::mode model)
{
    const auto parsed = explore::schedule::parse(decisions);
    if (!parsed) {
        std::cerr << "malformed decision string: \"" << decisions << "\"\n";
        return 2;
    }
    const auto program =
        jsk::attacks::cve_trigger_program(cve, /*with_jskernel=*/false, 17, model);
    const auto out = explore::replay(*parsed, program);
    std::cout << cve << " under \"" << parsed->str() << "\": "
              << (out.violated ? "TRIGGERED" : "not triggered") << "\n";
    return 0;
}

int run_audit(std::uint64_t program_seed, std::uint64_t schedules)
{
    const auto report = jsk::defenses::audit_schedule_invariance(program_seed, schedules);
    std::cout << "program seed " << program_seed << ": " << report.schedules_run
              << " schedules, "
              << (report.identical ? "journal + observations identical on all"
                                   : "DIVERGED")
              << "\n";
    if (!report.identical) {
        std::cout << report.detail << "\nfailing schedule: \""
                  << (report.failing ? report.failing->str() : std::string()) << "\"\n";
    }
    return report.identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv)
{
    // Strip the flags (--jobs N / --jobs=N / --json) so the positional
    // arguments keep their historical indices.
    std::size_t jobs = 0;  // 0 = hardware concurrency
    bool as_json = false;
    jsk::wm::mode model = jsk::wm::mode::seqcst;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            as_json = true;
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else if ((arg == "--memory-model" && i + 1 < argc) ||
                   arg.rfind("--memory-model=", 0) == 0) {
            const std::string name = arg.rfind("--memory-model=", 0) == 0
                                         ? arg.substr(15)
                                         : std::string(argv[++i]);
            const auto parsed = jsk::wm::parse_mode(name);
            if (!parsed) {
                std::cerr << "unknown memory model '" << name
                          << "' (want seqcst|relaxed)\n";
                return 2;
            }
            model = *parsed;
        } else {
            args.push_back(arg);
        }
    }
    if (args.empty()) return usage();
    const std::string mode = args[0];
    try {
        if (mode == "matrix") {
            return run_matrix(
                args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 16,
                jobs, as_json, model);
        }
        if (mode == "find" && args.size() >= 2) {
            return run_find(args[1],
                            args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 32,
                            args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 11,
                            model);
        }
        if (mode == "replay" && args.size() >= 3) {
            return run_replay(args[1], args[2], model);
        }
        if (mode == "audit" && args.size() >= 2) {
            return run_audit(std::strtoull(args[1].c_str(), nullptr, 10),
                             args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 100);
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    return usage();
}
