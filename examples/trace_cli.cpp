// trace_cli — run one CVE exploit under a chosen defense with the jsk::obs
// subsystem attached, and write a Chrome trace-event JSON file.
//
//   trace_cli [cve] [defense] [out.trace.json] [seed]
//   trace_cli --list
//
// Defaults: CVE-2018-5092 under jskernel, written to
// "<cve>.<defense>.trace.json". Load the output in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing: one row per simulated
// thread, task spans on the event-loop timeline, kernel dispatch spans
// nested inside them, and instants for timers, messages, fetches, policy
// decisions and CVE triggers. The top-level "otherData" field carries the
// run's metrics snapshot.
//
// All timestamps are virtual — two runs with the same arguments produce
// byte-identical files (tests/obs/test_trace_determinism.cpp pins the same
// property for the library).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "attacks/attacks_impl.h"
#include "defenses/defense.h"
#include "defenses/defenses_impl.h"
#include "kernel/json.h"
#include "obs/chrome_export.h"
#include "obs/collect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/browser.h"
#include "runtime/profile.h"
#include "runtime/vuln.h"
#include "sim/time.h"

namespace {

namespace jk = jsk;
namespace json = jsk::kernel::json;

int list_choices()
{
    std::cout << "CVEs:\n";
    for (const auto& [id, fn] : jk::attacks::cve_exploit_table()) {
        std::cout << "  " << id << "\n";
    }
    std::cout << "defenses:\n";
    for (const auto id : jk::defenses::all_defense_ids()) {
        std::cout << "  " << jk::defenses::to_string(id) << "\n";
    }
    return 0;
}

jk::attacks::cve_exploit_fn find_exploit(const std::string& cve)
{
    for (const auto& [id, fn] : jk::attacks::cve_exploit_table()) {
        if (id == cve) return fn;
    }
    return nullptr;
}

}  // namespace

int main(int argc, char** argv)
{
    if (argc > 1 && std::string(argv[1]) == "--list") return list_choices();
    if (argc > 1 && std::string(argv[1]).rfind("--", 0) == 0) {
        std::cerr << "usage: trace_cli [cve] [defense] [out.trace.json] [seed]\n"
                     "       trace_cli --list\n";
        return 2;
    }

    const std::string cve = argc > 1 ? argv[1] : "CVE-2018-5092";
    const std::string defense_name = argc > 2 ? argv[2] : "jskernel";
    const std::string out_path =
        argc > 3 ? argv[3] : cve + "." + defense_name + ".trace.json";
    const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 17;

    const jk::attacks::cve_exploit_fn exploit = find_exploit(cve);
    if (exploit == nullptr) {
        std::cerr << "unknown CVE id: " << cve << " (see trace_cli --list)\n";
        return 2;
    }

    std::unique_ptr<jk::defenses::defense> def;
    for (const auto id : jk::defenses::all_defense_ids()) {
        if (jk::defenses::to_string(id) == defense_name) {
            def = jk::defenses::make_defense(id, seed);
        }
    }
    if (def == nullptr) {
        std::cerr << "unknown defense: " << defense_name << " (see trace_cli --list)\n";
        return 2;
    }

    // World assembly mirrors the exploration harness: monitors attach first,
    // then the sink (so even defense installation is on the trace), then the
    // defense, then the documented exploit.
    jk::rt::browser b(jk::rt::chrome_profile(), seed);
    jk::rt::vuln_registry vulns(b.bus());
    jk::obs::sink sink;
    b.sim().set_trace_sink(&sink);
    jk::obs::wire_runtime(sink, b);
    vulns.set_trace_sink(&sink);
    def->install(b);

    exploit(b);
    b.run_until(60 * jk::sim::sec);

    jk::obs::registry reg;
    jk::obs::collect_sim(reg, b.sim());
    if (auto* jskd = dynamic_cast<jk::defenses::jskernel_defense*>(def.get())) {
        if (jskd->installed_kernel() != nullptr) {
            jk::obs::collect_kernel(reg, *jskd->installed_kernel());
        }
    }
    jk::obs::collect_vulns(reg, vulns);

    json::object other;
    other.emplace("cve", json::value{cve});
    other.emplace("defense", json::value{defense_name});
    other.emplace("metrics", reg.snapshot());
    if (!jk::obs::write_chrome_trace(sink, out_path,
                                     json::dump(json::value{std::move(other)}))) {
        return 1;
    }

    const auto triggered = vulns.triggered_ids();
    std::cout << cve << " under " << defense_name << ": " << sink.size()
              << " trace events, "
              << (triggered.empty() ? "no CVE triggered"
                                    : triggered.size() == 1
                                          ? triggered.front() + " TRIGGERED"
                                          : std::to_string(triggered.size()) +
                                                " CVEs TRIGGERED")
              << "\nwrote " << out_path << " — open it at https://ui.perfetto.dev\n";
    return 0;
}
