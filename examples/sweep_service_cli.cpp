// sweep_service_cli — the jsk::svc sweep service over stdin/stdout.
//
//   sweep_service_cli gen [--cves N] [--seed S] [--tenant T] [--program-seeds K]
//       Emit a framed job stream (hello, one job per (CVE x {plain,jskernel})
//       cell plus K chaos random-program jobs, end_wave) to stdout — the
//       input of `serve`, or a file of pre-recorded frames.
//
//   sweep_service_cli serve [--store DIR] [--jobs N] [--no-snapshots]
//                           [--json FILE] [--stats FILE]
//       Read job frames from stdin, resolve each wave against the in-memory
//       cache and the store (when --store is given), simulate only the
//       genuinely new witnesses on the worker pool, and stream result +
//       wave_done frames to stdout. --json writes the last wave's merged
//       matrix JSON to FILE; --stats writes the service snapshot (per-tenant
//       metrics, cache + store counters).
//
// Piping gen into serve twice against the same --store directory is the
// warm-cache determinism check CI runs: the second pass must recall from
// disk (>= 90% hits) and produce byte-identical merged JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "attacks/explore_sweep.h"
#include "svc/service.h"

namespace {

namespace jk = jsk;

int usage()
{
    std::cerr << "usage: sweep_service_cli gen [--cves N] [--seed S] [--tenant T] "
                 "[--program-seeds K]\n"
                 "       sweep_service_cli serve [--store DIR] [--jobs N] "
                 "[--no-snapshots] [--json FILE] [--stats FILE]\n";
    return 2;
}

bool parse_u64(const char* s, std::uint64_t& out)
{
    char* end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end != nullptr && *end == '\0' && end != s;
}

int run_gen(int argc, char** argv)
{
    std::uint64_t cves = 12;
    std::uint64_t seed = 17;
    std::uint64_t program_seeds = 0;
    std::string tenant = "cli";
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--cves" && has_next && parse_u64(argv[++i], cves)) continue;
        if (arg == "--seed" && has_next && parse_u64(argv[++i], seed)) continue;
        if (arg == "--program-seeds" && has_next && parse_u64(argv[++i], program_seeds))
            continue;
        if (arg == "--tenant" && has_next) {
            tenant = argv[++i];
            continue;
        }
        return usage();
    }
    const auto ids = jk::attacks::cve_ids();
    if (cves > ids.size()) cves = ids.size();

    jk::svc::file_sink out(stdout);
    jk::svc::write_frame(out, jk::svc::frame_type::hello,
                         jk::svc::encode_hello(tenant));
    std::uint64_t client_id = 1;
    for (std::uint64_t c = 0; c < cves; ++c) {
        for (const char* defense : {"plain", "jskernel"}) {
            jk::par::witness_key key;
            key.seed = seed;
            key.defense = defense;
            key.program = ids[c];
            jk::svc::write_frame(out, jk::svc::frame_type::job,
                                 jk::svc::encode_job({client_id++, key}));
        }
    }
    for (std::uint64_t p = 0; p < program_seeds; ++p) {
        jk::par::witness_key key;
        key.seed = seed;
        key.defense = "jskernel";
        key.program = "program:" + std::to_string(p + 1);
        jk::svc::write_frame(out, jk::svc::frame_type::job,
                             jk::svc::encode_job({client_id++, key}));
    }
    jk::svc::write_frame(out, jk::svc::frame_type::end_wave, "");
    out.flush();
    std::cerr << "gen: " << (client_id - 1) << " jobs, tenant '" << tenant << "'\n";
    return 0;
}

int run_serve(int argc, char** argv)
{
    jk::svc::service_options opt;
    std::string json_path;
    std::string stats_path;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        std::uint64_t n = 0;
        if (arg == "--store" && has_next) {
            opt.store_dir = argv[++i];
            continue;
        }
        if (arg == "--jobs" && has_next && parse_u64(argv[++i], n)) {
            opt.jobs = static_cast<std::size_t>(n);
            continue;
        }
        if (arg == "--no-snapshots") {
            opt.snapshots = false;
            continue;
        }
        if (arg == "--json" && has_next) {
            json_path = argv[++i];
            continue;
        }
        if (arg == "--stats" && has_next) {
            stats_path = argv[++i];
            continue;
        }
        return usage();
    }

    jk::svc::service service(opt);
    jk::svc::file_source in(stdin);
    jk::svc::file_sink out(stdout);
    std::string last_merged;
    std::uint64_t jobs = 0;
    std::uint64_t hits_mem = 0;
    std::uint64_t hits_disk = 0;
    std::uint64_t trials = 0;
    std::size_t waves = 0;
    try {
        waves = service.serve(in, out, [&](const jk::svc::wave_result& w) {
            last_merged = w.merged_json;
            jobs += w.jobs.size();
            hits_mem += w.hits_mem;
            hits_disk += w.hits_disk;
            trials += w.trials;
        });
    } catch (const jk::svc::wire_error& e) {
        std::cerr << "serve: " << e.what() << "\n";
        return 1;
    }

    if (!json_path.empty()) {
        std::ofstream f(json_path, std::ios::trunc);
        f << last_merged << "\n";
        if (!f) {
            std::cerr << "serve: cannot write " << json_path << "\n";
            return 1;
        }
    }
    if (!stats_path.empty()) {
        std::ofstream f(stats_path, std::ios::trunc);
        f << service.snapshot_json() << "\n";
        if (!f) {
            std::cerr << "serve: cannot write " << stats_path << "\n";
            return 1;
        }
    }
    std::cerr << "serve: " << waves << " waves, " << jobs << " jobs, " << trials
              << " simulated, " << hits_mem << " mem hits, " << hits_disk
              << " disk hits\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    if (argc < 2) return usage();
    const std::string mode = argv[1];
    if (mode == "gen") return run_gen(argc - 2, argv + 2);
    if (mode == "serve") return run_serve(argc - 2, argv + 2);
    return usage();
}
