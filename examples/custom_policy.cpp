// Writing your own JSKernel security policy.
//
// Policies hook the kernel's interposition points (§II-B3). This example
// adds a site-specific policy that (a) blocks worker fetches to a denylisted
// origin and (b) redacts a token from worker error messages — composed with
// the stock policies.
#include <cstdio>

#include "kernel/kernel.h"
#include "runtime/browser.h"

using namespace jsk;
namespace sim = jsk::sim;

namespace {

/// A custom policy: deny fetches to tracker origins and scrub error text.
class tracker_block_policy final : public kernel::policy {
public:
    const char* name() const override { return "tracker-block"; }

    bool on_fetch(kernel::kernel&, const std::string& url) override
    {
        const bool blocked = url.rfind("https://tracker.example/", 0) == 0;
        if (blocked) std::printf("  [policy] blocked fetch to %s\n", url.c_str());
        return blocked;
    }

    std::string on_worker_error(kernel::kernel&, const std::string& raw) override
    {
        std::string msg = raw;
        const std::string token = "secret-token";
        if (const auto pos = msg.find(token); pos != std::string::npos) {
            msg.replace(pos, token.size(), "[redacted]");
        }
        return msg;
    }
};

}  // namespace

int main()
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::kernel::boot(b);
    k->add_policy(std::make_unique<tracker_block_policy>());

    b.net().serve(rt::resource{"https://tracker.example/beacon", "https://tracker.example",
                               rt::resource_kind::data, 128, 0, 0, 0});
    b.net().serve(rt::resource{"https://app.example/config", "https://app.example",
                               rt::resource_kind::data, 256, 0, 0, 0});
    b.set_page_origin("https://app.example");

    std::printf("=== custom policy demo ===\n");
    b.main().post_task(0, [&b] {
        auto& apis = b.main().apis();
        apis.fetch(
            "https://tracker.example/beacon", {},
            [](const rt::fetch_result&) { std::printf("  tracker beacon SENT (bad!)\n"); },
            [](const rt::fetch_result& r) {
                std::printf("  tracker beacon failed: %s\n", r.error.c_str());
            });
        apis.fetch(
            "https://app.example/config", {},
            [](const rt::fetch_result& r) {
                std::printf("  app config loaded: %zu bytes\n", r.bytes);
            },
            nullptr);
    });
    b.run();

    std::printf("installed policies:\n");
    for (const auto& p : k->policies()) {
        std::printf("  - %-26s %s\n", p->name(),
                    p->cve()[0] ? p->cve() : "(site-specific)");
    }
    return 0;
}
