// A/B determinism pin for the scheduling hot-path overhaul.
//
// The golden rows below were captured against the pre-overhaul structures
// (linear-scan next_entry_hooked, O(C^2) FIFO filter, std::map event queue):
// for a grid of random programs, commutativity windows and walk seeds, one
// controlled run recorded its decision string plus FNV-1a hashes of the
// observation log, the kernel dispatch journal and the complete task_info
// stream. The test replays every recorded decision string against the
// current structures and requires all three hashes — and the decision string
// the replay itself re-records — to match bit-for-bit. Any scheduling
// divergence introduced by an "equivalent" data-structure change fails here
// with the offending program seed and schedule.
//
// Regenerate (only when a deliberate semantic change invalidates the rows):
//   JSK_AB_GENERATE=1 ./test_ab_determinism --gtest_filter='*generate*'
// and paste the printed table over kGolden.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>
#include <string>

#include "kernel/kernel.h"
#include "sim/explore.h"
#include "sim/simulation.h"
#include "sim/time.h"
#include "workloads/random_program.h"

namespace {

namespace sim = jsk::sim;
namespace explore = jsk::sim::explore;
namespace rt = jsk::rt;

std::uint64_t fnv1a(const std::string& text)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

struct ab_capture {
    std::string decisions;       // trimmed decision string the run took
    std::uint64_t observations;  // fnv1a of the program's observation log
    std::uint64_t journal;       // fnv1a of the kernel journal JSON ("-" when plain)
    std::uint64_t tasks;         // fnv1a of the task_info stream
};

/// One controlled run of a seeded random program: browser world, optional
/// kernel, task_info stream recorded from the simulator's observer seam.
ab_capture run_once(std::uint64_t program_seed, bool with_kernel, explore::controller& ctl)
{
    rt::browser b(rt::chrome_profile());
    std::string tasks;
    b.sim().add_task_observer([&tasks](const sim::task_info& info) {
        tasks += std::to_string(info.id) + "," + std::to_string(info.thread) + "," +
                 std::to_string(info.ready_at) + "," + std::to_string(info.start) + "," +
                 std::to_string(info.end) + "," + info.label + ";";
    });
    ctl.attach(b.sim());
    std::unique_ptr<jsk::kernel::kernel> k;
    if (with_kernel) k = jsk::kernel::kernel::boot(b);

    auto log = std::make_shared<jsk::workloads::observation_log>();
    jsk::workloads::install_random_program(b, program_seed, log);
    b.run_until(60 * sim::sec, 5'000'000);

    ab_capture out;
    auto decisions = ctl.decisions();
    decisions.trim();
    out.decisions = decisions.str();
    out.observations = fnv1a(log->str());
    out.journal = k ? fnv1a(k->dispatch_journal().to_json()) : 0;
    out.tasks = fnv1a(tasks);
    return out;
}

struct golden_row {
    std::uint64_t program_seed;
    bool with_kernel;
    sim::time_ns window;
    std::uint64_t walk_seed;  // 0: default schedule (first-candidate tail)
    const char* decisions;
    std::uint64_t observations;
    std::uint64_t journal;
    std::uint64_t tasks;
};

// clang-format off
const std::vector<golden_row> kGolden = {
    // {program_seed, with_kernel, window, walk_seed, decisions, observations, journal, tasks},
    {3, true, 0, 0, "", 11023429602967693624ull, 1424606468332453745ull, 12015893720014090436ull},
    {3, true, 0, 101, "10010211", 11023429602967693624ull, 1424606468332453745ull, 15254712110215379539ull},
    {3, true, 0, 202, "02002", 11023429602967693624ull, 7927947356507823027ull, 3653528279203108384ull},
    {3, true, 500000, 0, "", 11023429602967693624ull, 1424606468332453745ull, 12015893720014090436ull},
    {3, true, 500000, 101, "0000101300001101", 11023429602967693624ull, 6832963466621896635ull, 9644649826740489970ull},
    {3, true, 500000, 202, "210320304321101011", 11023429602967693624ull, 1424606468332453745ull, 2565246758986126067ull},
    {3, false, 0, 0, "", 17813124650377866034ull, 0ull, 6337611277474390524ull},
    {3, false, 0, 101, "1", 12691506308713992712ull, 0ull, 5344090196850629488ull},
    {3, false, 0, 202, "", 17813124650377866034ull, 0ull, 6337611277474390524ull},
    {3, false, 500000, 0, "", 17813124650377866034ull, 0ull, 6337611277474390524ull},
    {3, false, 500000, 101, "0001021", 5575738127397257642ull, 0ull, 11200866677320282760ull},
    {3, false, 500000, 202, "2100201", 2555222776511621380ull, 0ull, 2058465823710511623ull},
    {7, true, 0, 0, "", 9894352149532282703ull, 3173994653020045328ull, 4327937321658373156ull},
    {7, true, 0, 101, "", 9894352149532282703ull, 3173994653020045328ull, 4327937321658373156ull},
    {7, true, 0, 202, "", 9894352149532282703ull, 3173994653020045328ull, 4327937321658373156ull},
    {7, true, 500000, 0, "", 9894352149532282703ull, 3173994653020045328ull, 4327937321658373156ull},
    {7, true, 500000, 101, "1", 9894352149532282703ull, 10819255942592191338ull, 4148499029295079217ull},
    {7, true, 500000, 202, "021", 9894352149532282703ull, 10819255942592191338ull, 920550702400693143ull},
    {7, false, 0, 0, "", 10871819023106405821ull, 0ull, 7585362936219861391ull},
    {7, false, 0, 101, "", 10871819023106405821ull, 0ull, 7585362936219861391ull},
    {7, false, 0, 202, "", 10871819023106405821ull, 0ull, 7585362936219861391ull},
    {7, false, 500000, 0, "", 10871819023106405821ull, 0ull, 7585362936219861391ull},
    {7, false, 500000, 101, "1", 4430710783140272812ull, 0ull, 4496300997491432833ull},
    {7, false, 500000, 202, "01", 4430710783140272812ull, 0ull, 1325504280216029697ull},
    {11, true, 0, 0, "", 10808792164105370859ull, 3668449688817826026ull, 8074322606557665703ull},
    {11, true, 0, 101, "", 10808792164105370859ull, 3668449688817826026ull, 8074322606557665703ull},
    {11, true, 0, 202, "", 10808792164105370859ull, 3668449688817826026ull, 8074322606557665703ull},
    {11, true, 500000, 0, "", 10808792164105370859ull, 3668449688817826026ull, 8074322606557665703ull},
    {11, true, 500000, 101, "10001", 10808792164105370859ull, 2260097104620528460ull, 11354091388790186265ull},
    {11, true, 500000, 202, "011", 10808792164105370859ull, 2260097104620528460ull, 7488679837728950070ull},
    {11, false, 0, 0, "", 2186024597188033937ull, 0ull, 11170594326955607922ull},
    {11, false, 0, 101, "", 2186024597188033937ull, 0ull, 11170594326955607922ull},
    {11, false, 0, 202, "", 2186024597188033937ull, 0ull, 11170594326955607922ull},
    {11, false, 500000, 0, "", 2186024597188033937ull, 0ull, 11170594326955607922ull},
    {11, false, 500000, 101, "1", 2186024597188033937ull, 0ull, 9643003907514426842ull},
    {11, false, 500000, 202, "01", 1740258958735594580ull, 0ull, 15874926874808847171ull},
    {29, true, 0, 0, "", 8631134901920343781ull, 4127048841942013415ull, 10178899655093279077ull},
    {29, true, 0, 101, "", 8631134901920343781ull, 4127048841942013415ull, 10178899655093279077ull},
    {29, true, 0, 202, "", 8631134901920343781ull, 4127048841942013415ull, 10178899655093279077ull},
    {29, true, 500000, 0, "", 8631134901920343781ull, 4127048841942013415ull, 10178899655093279077ull},
    {29, true, 500000, 101, "1", 8631134901920343781ull, 4127048841942013415ull, 17135395831946671547ull},
    {29, true, 500000, 202, "", 8631134901920343781ull, 4127048841942013415ull, 10178899655093279077ull},
    {29, false, 0, 0, "", 12494191499352589028ull, 0ull, 2214268723121015215ull},
    {29, false, 0, 101, "", 12494191499352589028ull, 0ull, 2214268723121015215ull},
    {29, false, 0, 202, "", 12494191499352589028ull, 0ull, 2214268723121015215ull},
    {29, false, 500000, 0, "", 12494191499352589028ull, 0ull, 2214268723121015215ull},
    {29, false, 500000, 101, "", 12494191499352589028ull, 0ull, 2214268723121015215ull},
    {29, false, 500000, 202, "", 12494191499352589028ull, 0ull, 2214268723121015215ull},
};
// clang-format on

ab_capture capture_row(std::uint64_t program_seed, bool with_kernel, sim::time_ns window,
                       std::uint64_t walk_seed)
{
    explore::controller ctl({},
                            walk_seed == 0 ? explore::controller::tail_policy::first
                                           : explore::controller::tail_policy::random,
                            walk_seed);
    ctl.set_window(window);
    return run_once(program_seed, with_kernel, ctl);
}

TEST(ab_determinism, generate_golden_rows)
{
    if (std::getenv("JSK_AB_GENERATE") == nullptr) {
        GTEST_SKIP() << "set JSK_AB_GENERATE=1 to (re)generate the golden table";
    }
    for (const std::uint64_t program_seed : {3ull, 7ull, 11ull, 29ull}) {
        for (const bool with_kernel : {true, false}) {
            for (const sim::time_ns window : {sim::time_ns{0}, 500 * sim::us}) {
                for (const std::uint64_t walk_seed : {0ull, 101ull, 202ull}) {
                    const ab_capture c =
                        capture_row(program_seed, with_kernel, window, walk_seed);
                    std::printf("    {%llu, %s, %lld, %llu, \"%s\", %lluull, %lluull, "
                                "%lluull},\n",
                                static_cast<unsigned long long>(program_seed),
                                with_kernel ? "true" : "false",
                                static_cast<long long>(window),
                                static_cast<unsigned long long>(walk_seed),
                                c.decisions.c_str(),
                                static_cast<unsigned long long>(c.observations),
                                static_cast<unsigned long long>(c.journal),
                                static_cast<unsigned long long>(c.tasks));
                }
            }
        }
    }
}

TEST(ab_determinism, recorded_schedules_replay_identically_on_current_structures)
{
    ASSERT_GT(kGolden.size(), 0u) << "golden table is empty — regenerate";
    for (const golden_row& row : kGolden) {
        const auto prescribed = explore::schedule::parse(row.decisions);
        ASSERT_TRUE(prescribed.has_value()) << "malformed golden row: " << row.decisions;

        explore::controller ctl(*prescribed, explore::controller::tail_policy::first);
        ctl.set_window(row.window);
        const ab_capture replay = run_once(row.program_seed, row.with_kernel, ctl);

        const std::string what = "program " + std::to_string(row.program_seed) +
                                 (row.with_kernel ? " +kernel" : " plain") + " window " +
                                 std::to_string(row.window) + " schedule \"" +
                                 row.decisions + "\"";
        EXPECT_FALSE(ctl.replay_diverged()) << what << ": replay diverged";
        EXPECT_EQ(replay.decisions, row.decisions) << what << ": decision string drifted";
        EXPECT_EQ(replay.observations, row.observations) << what << ": observation log";
        EXPECT_EQ(replay.journal, row.journal) << what << ": kernel journal";
        EXPECT_EQ(replay.tasks, row.tasks) << what << ": task_info stream";
    }
}

TEST(ab_determinism, fresh_walks_still_match_their_golden_capture)
{
    // Beyond replay: re-running the *random walk itself* (same walk seed) must
    // produce the same decisions — the candidate sets offered at every point
    // are pinned, not just the replayed path.
    ASSERT_GT(kGolden.size(), 0u);
    for (const golden_row& row : kGolden) {
        const ab_capture fresh =
            capture_row(row.program_seed, row.with_kernel, row.window, row.walk_seed);
        EXPECT_EQ(fresh.decisions, row.decisions)
            << "program " << row.program_seed << " walk " << row.walk_seed
            << ": candidate sets shifted";
        EXPECT_EQ(fresh.tasks, row.tasks);
    }
}

}  // namespace
