// Unit tests for the discrete-event simulation core: ordering, per-thread
// occupancy, cancellation, thread teardown, and determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace {

using namespace jsk::sim;

TEST(simulation, runs_tasks_in_time_order)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    std::vector<int> order;
    sim.post(t, 30 * ms, [&] { order.push_back(3); });
    sim.post(t, 10 * ms, [&] { order.push_back(1); });
    sim.post(t, 20 * ms, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(simulation, ties_break_by_post_order)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        sim.post(t, 5 * ms, [&order, i] { order.push_back(i); });
    }
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(simulation, consume_advances_thread_time)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    time_ns seen_start = -1;
    time_ns seen_second = -1;
    sim.post(t, 0, [&] {
        seen_start = sim.now();
        sim.consume(7 * ms);
    });
    sim.post(t, 0, [&] { seen_second = sim.now(); });
    sim.run();
    EXPECT_EQ(seen_start, 0);
    EXPECT_EQ(seen_second, 7 * ms);  // the thread was busy for 7 ms
}

TEST(simulation, threads_overlap_in_virtual_time)
{
    simulation sim;
    const thread_id a = sim.create_thread("a");
    const thread_id b = sim.create_thread("b");
    time_ns b_start = -1;
    sim.post(a, 0, [&] { sim.consume(50 * ms); });
    sim.post(b, 1 * ms, [&] { b_start = sim.now(); });
    sim.run();
    EXPECT_EQ(b_start, 1 * ms);  // b is not blocked by a's long task
}

TEST(simulation, execution_is_ordered_by_effective_start_time)
{
    // Thread a is busy until 50ms, so its task posted at 10ms starts at 50ms;
    // thread b's task posted at 20ms must run before it.
    simulation sim;
    const thread_id a = sim.create_thread("a");
    const thread_id b = sim.create_thread("b");
    std::vector<std::string> order;
    sim.post(a, 0, [&] {
        sim.consume(50 * ms);
        order.push_back("a-long");
    });
    sim.post(a, 10 * ms, [&] { order.push_back("a-queued"); });
    sim.post(b, 20 * ms, [&] { order.push_back("b"); });
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a-long", "b", "a-queued"}));
}

TEST(simulation, cross_thread_posting_respects_sender_time)
{
    simulation sim;
    const thread_id a = sim.create_thread("a");
    const thread_id b = sim.create_thread("b");
    time_ns received = -1;
    sim.post(a, 0, [&] {
        sim.consume(5 * ms);
        sim.post(b, sim.now(), [&] { received = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(received, 5 * ms);
}

TEST(simulation, cancel_prevents_execution)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    bool ran = false;
    const task_id id = sim.post(t, 10 * ms, [&] { ran = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));  // already cancelled
    sim.run();
    EXPECT_FALSE(ran);
}

TEST(simulation, destroyed_thread_drops_tasks)
{
    simulation sim;
    const thread_id a = sim.create_thread("a");
    const thread_id b = sim.create_thread("b");
    bool ran = false;
    sim.post(b, 10 * ms, [&] { ran = true; });
    sim.post(a, 0, [&] { sim.destroy_thread(b); });
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_FALSE(sim.thread_alive(b));
    EXPECT_EQ(sim.post(b, 0, [] {}), 0u);  // posts to dead threads are rejected
}

TEST(simulation, run_until_stops_at_deadline)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        sim.post(t, i * 10 * ms, [&] { ++count; });
    }
    sim.run_until(45 * ms);
    EXPECT_EQ(count, 4);
    EXPECT_GE(sim.now(), 45 * ms);
    sim.run();
    EXPECT_EQ(count, 10);
}

TEST(simulation, observer_reports_intervals)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    std::vector<task_info> seen;
    sim.add_task_observer([&](const task_info& info) { seen.push_back(info); });
    sim.post(t, 5 * ms, [&] { sim.consume(2 * ms); }, "first");
    sim.post(t, 20 * ms, [] {}, "second");
    sim.run();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].label, "first");
    EXPECT_EQ(seen[0].start, 5 * ms);
    EXPECT_EQ(seen[0].end, 7 * ms);
    EXPECT_EQ(seen[1].start, 20 * ms);
}

TEST(simulation, task_observers_compose_and_detach)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    int first_count = 0;
    int second_count = 0;
    const auto first = sim.add_task_observer([&](const task_info&) { ++first_count; });
    sim.add_task_observer([&](const task_info&) { ++second_count; });
    sim.post(t, 0, [] {});
    sim.run();
    EXPECT_EQ(first_count, 1);  // both observers fired: adding never displaces
    EXPECT_EQ(second_count, 1);

    sim.remove_task_observer(first);
    sim.post(t, 0, [] {});
    sim.run();
    EXPECT_EQ(first_count, 1);  // removed handle no longer fires
    EXPECT_EQ(second_count, 2);
}

TEST(simulation, max_tasks_bounds_runaway_loops)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    std::function<void()> loop = [&] {
        sim.consume(1 * us);
        sim.post(t, sim.now(), loop);
    };
    sim.post(t, 0, loop);
    sim.run(1000);
    EXPECT_EQ(sim.tasks_executed(), 1000u);
}

TEST(simulation, consume_outside_task_throws)
{
    simulation sim;
    EXPECT_THROW(sim.consume(1), std::logic_error);
}

TEST(simulation, nested_posts_inherit_consumed_time)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    std::vector<time_ns> starts;
    sim.post(t, 0, [&] {
        sim.consume(3 * ms);
        sim.post(t, sim.now(), [&] { starts.push_back(sim.now()); });
        sim.consume(4 * ms);  // extends busy window past the nested post
    });
    sim.run();
    ASSERT_EQ(starts.size(), 1u);
    EXPECT_EQ(starts[0], 7 * ms);  // waits for the full task, not the 3 ms mark
}

TEST(simulation, thread_created_mid_task_cannot_start_before_creation)
{
    // Regression: create_thread used to seed busy_until from the global
    // low-water mark (still 0 while the creating task runs), so a task
    // posted from an earlier-in-virtual-time thread could start on the new
    // worker *before the worker existed*.
    simulation sim;
    const thread_id a = sim.create_thread("a");
    const thread_id b = sim.create_thread("b");
    thread_id w = no_thread;
    time_ns created_at = -1;
    time_ns w_start = -1;
    sim.post(a, 0, [&] {
        sim.consume(50 * ms);
        w = sim.create_thread("worker");
        created_at = sim.now();
    });
    sim.post(b, 10 * ms, [&] {
        // Runs after a's task in host order (start 10ms > 0) but at an
        // earlier virtual time than the worker's creation; it learned the
        // worker id through shared C++ state.
        sim.post(w, sim.now(), [&] { w_start = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(created_at, 50 * ms);
    EXPECT_EQ(w_start, 50 * ms);  // never 10ms: creation time is a floor
}

TEST(simulation, reentrant_run_from_task_throws)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    bool threw_run = false;
    bool threw_run_until = false;
    bool after_ran = false;
    sim.post(t, 0, [&] {
        try {
            sim.run();
        } catch (const std::logic_error&) {
            threw_run = true;
        }
        try {
            sim.run_until(1 * ms);
        } catch (const std::logic_error&) {
            threw_run_until = true;
        }
    });
    sim.post(t, 2 * ms, [&] { after_ran = true; });
    sim.run();
    EXPECT_TRUE(threw_run);
    EXPECT_TRUE(threw_run_until);
    EXPECT_TRUE(after_ran);  // the outer run survives the rejected nesting
}

TEST(simulation, destroy_thread_drops_pending_count_eagerly)
{
    simulation sim;
    const thread_id a = sim.create_thread("a");
    const thread_id b = sim.create_thread("b");
    for (int i = 0; i < 4; ++i) sim.post(b, (i + 1) * 10 * ms, [] {});
    std::size_t inside = ~std::size_t{0};
    sim.post(a, 0, [&] {
        sim.destroy_thread(b);
        inside = sim.pending_tasks();  // b's tasks must leave the count now
    });
    EXPECT_EQ(sim.pending_tasks(), 5u);
    sim.run();
    EXPECT_EQ(inside, 0u);
    EXPECT_EQ(sim.pending_tasks(), 0u);
}

namespace {
/// Minimal hook: always runs the earliest candidate (index 0).
struct first_hook final : schedule_hook {
    std::size_t choose(const std::vector<sched_candidate>&) override { return 0; }
};
}  // namespace

TEST(simulation, hooked_runs_keep_unhooked_queue_empty)
{
    // Regression: posts used to feed the unhooked pop queue even while a
    // hook was installed (which never pops it), so long exploration runs
    // grew memory without bound.
    simulation sim;
    const thread_id t = sim.create_thread("main");
    first_hook hook;
    sim.set_schedule_hook(&hook, 0);
    int ran = 0;
    std::function<void()> chain = [&] {
        sim.consume(1 * us);
        if (++ran < 200) sim.post(t, sim.now(), chain);
    };
    sim.post(t, 0, chain);
    EXPECT_EQ(sim.queued_entries(), 0u);
    sim.run();
    EXPECT_EQ(ran, 200);
    EXPECT_EQ(sim.queued_entries(), 0u);

    // Clearing the hook rebuilds the unhooked queue from pending state.
    sim.post(t, sim.now() + 1 * ms, [&] { ++ran; });
    sim.set_schedule_hook(nullptr);
    EXPECT_EQ(sim.queued_entries(), 1u);
    sim.run();
    EXPECT_EQ(ran, 201);
}

TEST(simulation, hooked_and_unhooked_schedules_agree_at_window_zero)
{
    // With window 0 the hook is only consulted on genuine (start, id) ties,
    // and first_hook resolves them exactly like the unhooked queue — the two
    // scheduling paths must produce identical observation streams.
    const auto run_one = [](schedule_hook* hook) {
        simulation sim;
        const thread_id m = sim.create_thread("main");
        const thread_id w = sim.create_thread("worker");
        if (hook) sim.set_schedule_hook(hook, 0);
        std::vector<std::string> log;
        sim.add_task_observer([&](const task_info& info) {
            log.push_back(info.label + "@" + std::to_string(info.start));
        });
        sim.post(m, 0, [&] {
            sim.consume(3 * ms);
            sim.post(w, sim.now(), [&] { sim.consume(2 * ms); }, "msg");
        }, "boot");
        sim.post(m, 1 * ms, [&] { sim.consume(4 * ms); }, "timer1");
        sim.post(w, 2 * ms, [&] { sim.consume(1 * ms); }, "wtimer");
        sim.post(m, 2 * ms, [] {}, "timer2");
        sim.run();
        return log;
    };
    first_hook hook;
    EXPECT_EQ(run_one(nullptr), run_one(&hook));
}

TEST(simulation, peak_pending_tracks_high_water_mark)
{
    simulation sim;
    const thread_id t = sim.create_thread("main");
    for (int i = 0; i < 3; ++i) sim.post(t, i * ms, [] {});
    sim.run();
    sim.post(t, 0, [] {});
    sim.run();
    EXPECT_EQ(sim.peak_pending(), 3u);
    EXPECT_EQ(sim.pending_tasks(), 0u);
}

}  // namespace
