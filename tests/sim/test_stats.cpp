// Unit tests for the statistics helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "sim/stats.h"

namespace {

using namespace jsk::sim;

TEST(stats, summarize_basic)
{
    const summary s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.n, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(stats, summarize_empty_is_zero)
{
    const summary s = summarize({});
    EXPECT_EQ(s.n, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(stats, welch_t_separates_distinct_samples)
{
    const std::vector<double> a{10.0, 10.1, 9.9, 10.05};
    const std::vector<double> b{20.0, 20.2, 19.8, 20.1};
    EXPECT_GT(welch_t(a, b), 10.0);
}

TEST(stats, welch_t_identical_point_masses_is_zero)
{
    const std::vector<double> a{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(welch_t(a, a), 0.0);
}

TEST(stats, welch_t_distinct_point_masses_is_infinite)
{
    const std::vector<double> a{5.0, 5.0, 5.0};
    const std::vector<double> b{6.0, 6.0, 6.0};
    EXPECT_TRUE(std::isinf(welch_t(a, b)));
}

TEST(stats, classification_accuracy_perfect_separation)
{
    const std::vector<double> a{1.0, 1.1, 0.9};
    const std::vector<double> b{9.0, 9.1, 8.9};
    EXPECT_DOUBLE_EQ(classification_accuracy(a, b), 1.0);
}

TEST(stats, classification_accuracy_identical_is_chance)
{
    const std::vector<double> a{5.0, 5.0};
    EXPECT_DOUBLE_EQ(classification_accuracy(a, a), 0.5);
}

TEST(stats, classification_accuracy_overlapping_is_middling)
{
    rng r(42);
    std::vector<double> a, b;
    for (int i = 0; i < 500; ++i) {
        a.push_back(r.normal(0.0, 1.0));
        b.push_back(r.normal(0.5, 1.0));
    }
    const double acc = classification_accuracy(a, b);
    EXPECT_GT(acc, 0.5);
    EXPECT_LT(acc, 0.75);
}

TEST(stats, empirical_cdf_is_monotone)
{
    const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
    EXPECT_DOUBLE_EQ(cdf[2].first, 3.0);
    EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
    EXPECT_LT(cdf[0].second, cdf[1].second);
}

TEST(stats, percentile_interpolates)
{
    const std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
}

TEST(stats, cosine_similarity_identical_bags)
{
    const std::unordered_map<std::string, double> bag{{"div", 3.0}, {"a", 2.0}};
    EXPECT_DOUBLE_EQ(cosine_similarity(bag, bag), 1.0);
}

TEST(stats, cosine_similarity_disjoint_bags_is_zero)
{
    EXPECT_DOUBLE_EQ(cosine_similarity({{"a", 1.0}}, {{"b", 1.0}}), 0.0);
}

TEST(stats, cosine_similarity_empty_bags_identical)
{
    EXPECT_DOUBLE_EQ(cosine_similarity({}, {}), 1.0);
    EXPECT_DOUBLE_EQ(cosine_similarity({{"a", 1.0}}, {}), 0.0);
}

TEST(rng, deterministic_for_same_seed)
{
    rng a(7), b(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(rng, uniform_respects_bounds)
{
    rng r(1);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniform(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(rng, normal_has_roughly_right_moments)
{
    rng r(99);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i) xs.push_back(r.normal(10.0, 2.0));
    const summary s = summarize(xs);
    EXPECT_NEAR(s.mean, 10.0, 0.1);
    EXPECT_NEAR(s.stddev, 2.0, 0.1);
}

}  // namespace
