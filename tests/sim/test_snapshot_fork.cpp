// Fork-vs-fresh differential suite — the headline guarantee of jsk::core.
//
// A trial served from a copy-on-write fork of a sealed world snapshot must
// be *indistinguishable* from the same trial in a from-scratch world: same
// vuln outcome, same recorded schedule, same kernel journal bytes, same
// Chrome trace bytes, same metrics registry dump. Anything less and the
// snapshot path is not a throughput knob but a silent semantics change.
//
// The suite drives the real sweep entry points (run_cve_trial_fresh /
// run_cve_trial_forked, run_chaos_trial / run_chaos_trial_forked) across
// every Table-I CVE and every defense column, reusing one snapshot per
// world recipe — so each snapshot serves many forks, which is exactly the
// production access pattern and the hardest case for restore correctness.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attacks/chaos_sweep.h"
#include "attacks/explore_sweep.h"
#include "core/arena.h"
#include "core/snapshot.h"
#include "core/world.h"
#include "defenses/defense.h"
#include "faults/plan.h"

namespace {

using namespace jsk;

#define REQUIRE_ARENA()                                                   \
    do {                                                                  \
        if (!core::arena::supported())                                    \
            GTEST_SKIP() << "no arena address-space support on this host"; \
    } while (0)

/// Every defense column of the differential product: no defense at all
/// ("plain") plus each Table-I comparator.
std::vector<std::optional<defenses::defense_id>> defense_columns()
{
    std::vector<std::optional<defenses::defense_id>> cols;
    cols.emplace_back(std::nullopt);
    for (const auto id : defenses::all_defense_ids()) cols.emplace_back(id);
    return cols;
}

std::string column_name(const std::optional<defenses::defense_id>& d)
{
    return d ? defenses::to_string(*d) : "plain";
}

// --- explore trials: all 12 CVEs x all defenses ------------------------------

TEST(snapshot_fork, explore_differential_all_cves_all_defenses)
{
    REQUIRE_ARENA();
    core::snapshot_cache snaps;
    core::fork_stats st;

    // Two walk shapes per cell: the deterministic tail-first walk (the
    // matrix's walk 0) and a seeded random walk — so both controller tail
    // policies cross the fork boundary.
    std::vector<attacks::cve_walk_spec> walks(2);
    walks[1].tail = sim::explore::controller::tail_policy::random;
    walks[1].walk_seed = 0xD1FFu;

    std::size_t cells = 0;
    for (const auto& cve : attacks::cve_ids()) {
        for (const auto& defense : defense_columns()) {
            attacks::cve_trial_spec spec;
            spec.cve = cve;
            spec.defense = defense;
            for (const auto& walk : walks) {
                const auto fresh = attacks::run_cve_trial_fresh(spec, walk);
                core::world_snapshot& snap =
                    snaps.get(attacks::cve_world_recipe(spec), &st);
                const auto forked =
                    attacks::run_cve_trial_forked(snap, spec, walk, &st);
                ASSERT_EQ(forked.triggered, fresh.triggered)
                    << cve << " / " << column_name(defense);
                ASSERT_EQ(forked.decisions, fresh.decisions)
                    << cve << " / " << column_name(defense);
            }
            ++cells;
        }
    }
    EXPECT_EQ(cells, attacks::cve_ids().size() * defense_columns().size());
    // Every spec shares one world recipe (defenses install per fork), so
    // the whole product is served by a single snapshot.
    EXPECT_EQ(snaps.size(), 1u);
    EXPECT_EQ(st.snapshots, 1u);
    EXPECT_EQ(st.forks, st.restores);
    EXPECT_EQ(st.forks, cells * walks.size());
}

// --- chaos trials: full oracle comparison ------------------------------------

void expect_chaos_equal(const attacks::chaos_trial_result& forked,
                        const attacks::chaos_trial_result& fresh,
                        const std::string& label)
{
    EXPECT_EQ(forked.triggered, fresh.triggered) << label;
    EXPECT_EQ(forked.hit_task_cap, fresh.hit_task_cap) << label;
    EXPECT_EQ(forked.tasks_executed, fresh.tasks_executed) << label;
    EXPECT_EQ(forked.faults_injected, fresh.faults_injected) << label;
    EXPECT_EQ(forked.watchdog_fires, fresh.watchdog_fires) << label;
    EXPECT_EQ(forked.fetch_retries, fresh.fetch_retries) << label;
    EXPECT_EQ(forked.journal_json, fresh.journal_json) << label;
    EXPECT_EQ(forked.trace_json, fresh.trace_json) << label;
    EXPECT_EQ(forked.observations, fresh.observations) << label;
    EXPECT_EQ(forked.metrics.to_json(), fresh.metrics.to_json()) << label;
}

TEST(snapshot_fork, chaos_differential_all_cves_both_kernels)
{
    REQUIRE_ARENA();
    const attacks::chaos_options opt;
    core::snapshot_cache snaps;
    core::fork_stats st;

    std::size_t trial = 0;
    for (const auto& cve : attacks::cve_ids()) {
        for (const bool with_kernel : {false, true}) {
            // Rotate through sampled plans so faults of every family cross
            // the fork boundary without running the full plan product here.
            const faults::plan p = faults::plan::sample(trial % 6);
            const auto fresh = attacks::run_chaos_trial(cve, with_kernel, p, 17, opt);
            core::world_snapshot& snap =
                snaps.get(attacks::chaos_world_recipe(with_kernel, 17, opt), &st);
            const auto forked =
                attacks::run_chaos_trial_forked(snap, cve, p, opt, &st);
            expect_chaos_equal(forked, fresh,
                               cve + (with_kernel ? "/jskernel" : "/plain"));
            ++trial;
        }
    }
    // One snapshot per defense shape: plain and kernel-booted worlds.
    EXPECT_EQ(snaps.size(), 2u);
    EXPECT_EQ(st.snapshots, 2u);
    EXPECT_EQ(st.forks, trial);
    EXPECT_EQ(st.restores, trial);
}

TEST(snapshot_fork, chaos_random_programs_differential)
{
    REQUIRE_ARENA();
    const attacks::chaos_options opt;
    core::snapshot_cache snaps;

    for (const bool with_kernel : {false, true}) {
        core::world_snapshot& snap =
            snaps.get(attacks::chaos_world_recipe(with_kernel, 17, opt));
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            const faults::plan p = faults::plan::sample(seed);
            const auto fresh = attacks::run_chaos_program(seed, with_kernel, p, 17, opt);
            const auto forked = attacks::run_chaos_program_forked(snap, seed, p, opt);
            expect_chaos_equal(forked, fresh,
                               "program seed " + std::to_string(seed) +
                                   (with_kernel ? "/jskernel" : "/plain"));
            // Random programs exercise the observation-log oracle; make
            // sure the comparison wasn't trivially empty-vs-empty.
            EXPECT_FALSE(fresh.observations.empty());
        }
    }
}

// --- sibling isolation -------------------------------------------------------

TEST(snapshot_fork, sibling_forks_do_not_leak_into_each_other)
{
    REQUIRE_ARENA();
    // Interleave very different trials from one snapshot, then re-run the
    // first trial: if any sibling's mutations survived its restore, the
    // re-run diverges from the original.
    const attacks::chaos_options opt;
    auto snap = core::snapshot_world(attacks::chaos_world_recipe(true, 17, opt));
    const std::string cve = attacks::cve_ids().front();

    const auto first =
        attacks::run_chaos_trial_forked(*snap, cve, faults::plan::sample(0), opt);
    for (std::uint64_t i = 1; i <= 3; ++i) {
        (void)attacks::run_chaos_program_forked(*snap, i, faults::plan::sample(i), opt);
        (void)attacks::run_chaos_trial_forked(*snap, attacks::cve_ids()[i],
                                              faults::plan::sample(5 - i), opt);
    }
    const auto again =
        attacks::run_chaos_trial_forked(*snap, cve, faults::plan::sample(0), opt);
    expect_chaos_equal(again, first, "re-run after sibling forks");
}

// --- page-session worlds -----------------------------------------------------

TEST(snapshot_fork, site_preloaded_worlds_fork_identically)
{
    REQUIRE_ARENA();
    // The bench-critical shape: a world with synthetic page sessions
    // preloaded to quiescence, where trial deadlines are now()-relative.
    attacks::cve_trial_spec spec;
    spec.cve = attacks::cve_ids().front();
    spec.site_ranks = {0, 1, 2};
    core::fork_stats st;
    auto snap = core::snapshot_world(attacks::cve_world_recipe(spec), &st);
    EXPECT_GT(st.image_bytes, 0u);

    for (const auto& defense : defense_columns()) {
        spec.defense = defense;
        attacks::cve_walk_spec walk;
        const auto fresh = attacks::run_cve_trial_fresh(spec, walk);
        const auto forked = attacks::run_cve_trial_forked(*snap, spec, walk, &st);
        EXPECT_EQ(forked.triggered, fresh.triggered) << column_name(defense);
        EXPECT_EQ(forked.decisions, fresh.decisions) << column_name(defense);
    }
}

// --- arena/snapshot core semantics ------------------------------------------

TEST(snapshot_fork, restore_rolls_back_anchor_mutations_and_bump_pointer)
{
    REQUIRE_ARENA();
    core::fork_stats st;
    core::world_snapshot snap;
    snap.capture([] { return new std::string("sealed"); }, &st);
    ASSERT_TRUE(snap.sealed());
    EXPECT_EQ(st.snapshots, 1u);
    EXPECT_GT(st.image_bytes, 0u);

    auto* s = static_cast<std::string*>(snap.anchor());
    ASSERT_TRUE(core::arena::contains(s));
    EXPECT_EQ(*s, "sealed");
    const std::size_t sealed_used = snap.heap().used();

    for (int round = 0; round < 3; ++round) {
        {
            core::fork fk(snap, &st);
            fk.step([&] {
                // Mutate the anchored object and allocate fresh arena
                // storage; both must vanish with the restore.
                s->assign("mutated in round " + std::to_string(round));
                auto* scratch = new std::vector<std::uint64_t>(1024, round);
                EXPECT_TRUE(core::arena::contains(scratch));
            });
            EXPECT_NE(*s, "sealed");
        }
        EXPECT_EQ(*s, "sealed") << "round " << round;
        EXPECT_EQ(snap.heap().used(), sealed_used) << "round " << round;
    }
    EXPECT_EQ(st.forks, 3u);
    EXPECT_EQ(st.restores, 3u);
    EXPECT_GT(st.pages_restored, 0u);
}

TEST(snapshot_fork, scope_routes_allocations_and_guard_off_heap_stays_global)
{
    REQUIRE_ARENA();
    core::world_snapshot snap;
    snap.capture([] { return new int(7); });
    // Outside any scope, operator new must keep using the global heap.
    auto outside = std::make_unique<std::string>("global heap");
    EXPECT_FALSE(core::arena::contains(outside.get()));
    EXPECT_TRUE(core::arena::contains(snap.anchor()));
}

}  // namespace
