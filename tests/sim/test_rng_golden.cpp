// Seed-stability regression: golden output sequences for jsk::sim::rng.
//
// Every experiment table in the reproduction keys off these streams (browser
// jitter, fuzz programs, random schedule walks). A refactor that changes any
// generator output — even "harmlessly" — silently re-rolls every published
// number, so the exact sequences are pinned here. If you intentionally
// change the generator, bump these goldens in the same commit and say so.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace {

using jsk::sim::rng;
using jsk::sim::splitmix64;

TEST(rng_golden, splitmix64_stream)
{
    std::uint64_t state = 0;
    EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(state, 2 * 0x9e3779b97f4a7c15ULL);
}

TEST(rng_golden, split_stream_golden)
{
    using jsk::sim::split;
    // Pinned like every other stream here: per-shard seeds in jsk::par and
    // the sweep drivers derive from these exact values.
    EXPECT_EQ(split(0, 0), 0xa706dd2f4d197e6fULL);
    EXPECT_EQ(split(0, 1), 0x5e41ab087439611eULL);
    EXPECT_EQ(split(0, 2), 0x64684c4f0fd784b4ULL);
    EXPECT_EQ(split(0, 3), 0xbccdfd9c96a18897ULL);
    EXPECT_EQ(split(101, 0), 0x80ee48f2bcc7b55bULL);
    EXPECT_EQ(split(101, 1), 0xeae6bb34563b7c48ULL);
    EXPECT_EQ(split(101, 2), 0xfec0d63e27089a71ULL);
    EXPECT_EQ(split(101, 3), 0x2ae4441c85603344ULL);
    EXPECT_EQ(split(0x6a736b65726e656cULL, 7), 0xe735c4b48f18a7e3ULL);
}

TEST(rng_golden, split_streams_are_pure_and_distinct)
{
    using jsk::sim::split;
    // Pure: same (root, stream) always yields the same seed.
    EXPECT_EQ(split(42, 9), split(42, 9));
    // Distinct across neighbouring streams and across roots.
    EXPECT_NE(split(42, 0), split(42, 1));
    EXPECT_NE(split(42, 1), split(42, 2));
    EXPECT_NE(split(42, 0), split(43, 0));
    // Seeding rngs from adjacent streams yields uncorrelated sequences.
    rng a(split(7, 0)), b(split(7, 1));
    bool any_differ = false;
    for (int i = 0; i < 8; ++i) any_differ = any_differ || a.next_u64() != b.next_u64();
    EXPECT_TRUE(any_differ);
}

TEST(rng_golden, default_seed_next_u64)
{
    rng r;  // seed 0x6a736b65726e656c ("jskernel")
    const std::vector<std::uint64_t> expected{
        0x31f4ba8ebe66b706ULL, 0x3cac72ea185ec4deULL, 0x786eff1fd31fcff9ULL,
        0x9ddc4cba82e5990cULL, 0xbbdafebe2b90536dULL, 0xd8d0251dda6aca36ULL,
        0x7f6976cf782c308bULL, 0x8acde981d7b3d227ULL,
    };
    for (const auto want : expected) EXPECT_EQ(r.next_u64(), want);
}

TEST(rng_golden, seeded_uniform_stream)
{
    rng r(42);
    const std::vector<std::int64_t> expected{42, 2, 9, 93, 76, 84, 54, 7};
    for (const auto want : expected) EXPECT_EQ(r.uniform(0, 99), want);
}

TEST(rng_golden, seeded_double_stream)
{
    rng r(42);
    EXPECT_DOUBLE_EQ(r.next_double(), 0.083862971059882163);
    EXPECT_DOUBLE_EQ(r.next_double(), 0.37898025066266861);
    EXPECT_DOUBLE_EQ(r.next_double(), 0.68004341102813937);
    EXPECT_DOUBLE_EQ(r.next_double(), 0.92469294532538759);
}

TEST(rng_golden, seeded_normal_stream)
{
    rng r(7);
    EXPECT_DOUBLE_EQ(r.normal(0.0, 1.0), 0.65762342387930062);
    EXPECT_DOUBLE_EQ(r.normal(0.0, 1.0), -0.38341470843099401);
    EXPECT_DOUBLE_EQ(r.normal(0.0, 1.0), -0.45911059510345709);
    EXPECT_DOUBLE_EQ(r.normal(0.0, 1.0), 1.0637222114361684);
}

TEST(rng_golden, seeded_chance_stream)
{
    rng r(7);
    const std::vector<bool> expected{false, true, false, false, false, false, true, true};
    for (const bool want : expected) EXPECT_EQ(r.chance(0.3), want);
}

TEST(rng_golden, same_seed_same_stream_different_seed_different_stream)
{
    rng a(123), b(123), c(124);
    bool any_differ = false;
    for (int i = 0; i < 16; ++i) {
        const auto va = a.next_u64();
        EXPECT_EQ(va, b.next_u64());
        any_differ = any_differ || va != c.next_u64();
    }
    EXPECT_TRUE(any_differ);
}

}  // namespace
