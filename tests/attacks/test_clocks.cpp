// Unit tests for the implicit-clock measurement helpers.
#include <gtest/gtest.h>

#include "attacks/clocks.h"
#include "sim/trace.h"

namespace {

using namespace jsk;
namespace sim = jsk::sim;
namespace rt = jsk::rt;

attacks::async_op delay_op(sim::time_ns latency)
{
    return [latency](rt::browser& b, std::function<void()> done) {
        b.main().apis().set_timeout([done] { done(); }, latency);
    };
}

TEST(timeout_clock, counts_scale_with_op_duration)
{
    rt::browser fast_browser(rt::chrome_profile());
    const double fast = attacks::count_timeout_ticks_during(fast_browser, delay_op(20 * sim::ms));
    rt::browser slow_browser(rt::chrome_profile());
    const double slow =
        attacks::count_timeout_ticks_during(slow_browser, delay_op(200 * sim::ms));
    EXPECT_GT(fast, 0.0);
    EXPECT_GT(slow, fast * 3);
}

TEST(timeout_clock, zero_duration_op_counts_nothing)
{
    rt::browser b(rt::chrome_profile());
    const double ticks = attacks::count_timeout_ticks_during(
        b, [](rt::browser& bb, std::function<void()> done) {
            bb.main().queue_microtask(done);
            bb.main().consume(1);
        });
    EXPECT_LT(ticks, 2.0);
}

TEST(now_polls, scale_with_op_duration)
{
    rt::browser fast_browser(rt::chrome_profile());
    const double fast = attacks::count_now_polls_during(fast_browser, delay_op(10 * sim::ms));
    rt::browser slow_browser(rt::chrome_profile());
    const double slow = attacks::count_now_polls_during(slow_browser, delay_op(60 * sim::ms));
    EXPECT_GT(slow, fast * 2);
}

TEST(raf_interval, idle_page_runs_at_60hz)
{
    rt::browser b(rt::chrome_profile());
    const double interval = attacks::mean_raf_interval(b, 6, [](int) {});
    EXPECT_NEAR(interval, 16.666, 0.5);
}

TEST(raf_interval, heavy_frames_slip_the_grid)
{
    rt::browser b(rt::chrome_profile());
    rt::browser* bp = &b;
    const double interval = attacks::mean_raf_interval(
        b, 6, [bp](int) { bp->painter().add_paint_work(20 * sim::ms); });
    EXPECT_GT(interval, 30.0);
}

TEST(video_cues, count_tracks_duration)
{
    rt::browser fast_browser(rt::chrome_profile());
    const double fast = attacks::count_video_cues_during(fast_browser, delay_op(50 * sim::ms));
    rt::browser slow_browser(rt::chrome_profile());
    const double slow =
        attacks::count_video_cues_during(slow_browser, delay_op(400 * sim::ms));
    EXPECT_GT(slow, fast);
}

TEST(trace_recorder, records_labels_and_intervals)
{
    sim::simulation s;
    const auto t = s.create_thread("main");
    sim::trace_recorder recorder;
    recorder.attach(s, t);
    s.post(t, 1 * sim::ms, [&] { s.consume(2 * sim::ms); }, "a");
    s.post(t, 10 * sim::ms, [] {}, "b");
    s.post(t, 30 * sim::ms, [] {}, "a");
    s.run();
    EXPECT_EQ(recorder.records().size(), 3u);
    EXPECT_EQ(recorder.count_label("a"), 2u);
    EXPECT_EQ(recorder.max_start_interval(), 20 * sim::ms);
    EXPECT_EQ(recorder.total_busy(), 2 * sim::ms);
    recorder.clear();
    EXPECT_TRUE(recorder.records().empty());
}

}  // namespace
