// The headline integration test: the full Table I matrix. Every attack is
// run under every defense; the measured prevention verdict must match the
// reconstructed matrix in attacks/expected.h.
//
// This is parameterized over (attack, defense) so each cell is its own test
// case; a regression in any single mechanism shows up as exactly one red
// cell.
#include <gtest/gtest.h>

#include "attacks/attack.h"
#include "attacks/expected.h"

namespace {

using namespace jsk;

struct cell {
    std::string attack_name;
    defenses::defense_id defense;
};

std::vector<cell> all_cells()
{
    std::vector<cell> cells;
    for (const auto& atk : attacks::all_attacks()) {
        for (const auto def : defenses::all_defense_ids()) {
            cells.push_back(cell{atk->name(), def});
        }
    }
    return cells;
}

class table1_cell : public ::testing::TestWithParam<cell> {};

TEST_P(table1_cell, matches_expected_matrix)
{
    const cell& c = GetParam();
    // Re-find the attack by name (attacks are not copyable).
    std::unique_ptr<attacks::attack> atk;
    for (auto& candidate : attacks::all_attacks()) {
        if (candidate->name() == c.attack_name) {
            atk = std::move(candidate);
            break;
        }
    }
    ASSERT_NE(atk, nullptr);

    attacks::run_config config;
    config.defense = c.defense;
    config.trials = 7;
    config.seed = 11;
    const attacks::attack_outcome outcome = atk->run(config);

    EXPECT_EQ(outcome.prevented, attacks::expected_prevented(c.attack_name, c.defense))
        << "attack=" << c.attack_name << " defense=" << defenses::to_string(c.defense)
        << " accuracy=" << outcome.accuracy
        << " cve_triggered=" << outcome.cve_triggered;
}

std::string cell_name(const ::testing::TestParamInfo<cell>& info)
{
    std::string name =
        info.param.attack_name + "_" + defenses::to_string(info.param.defense);
    for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(matrix, table1_cell, ::testing::ValuesIn(all_cells()), cell_name);

}  // namespace
