// jsk::svc — wire-framing robustness: the torn-frame fuzz.
//
// The resume protocol hinges on one classification being exact: a response
// cut at a frame boundary is a clean EOF (the conversation simply ended),
// and a response cut anywhere *inside* a frame is a torn connection
// (wire_error — resume and replay). This suite truncates a stream holding
// every frame type at every byte offset and asserts the classification
// never misfires in either direction, then fuzzes every typed payload
// decoder with every prefix of its canonical encoding.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "svc/wire.h"

namespace {

using namespace jsk;

svc::job_result sample_result()
{
    svc::job_result r;
    r.triggered = true;
    r.tasks_executed = 41;
    r.faults_injected = 3;
    r.journal_digest = 0xDEADBEEFCAFEF00DULL;
    r.trace_digest = 0x1234;
    r.decisions = "0,1,0,2";
    return r;
}

svc::wire_job sample_job()
{
    svc::wire_job j;
    j.client_id = 7;
    j.key.seed = 17;
    j.key.plan = "p";
    j.key.decisions = "";
    j.key.defense = "jskernel";
    j.key.program = "cve-2017-5753";
    return j;
}

/// One of every frame type, in a plausible conversation order.
std::vector<std::pair<svc::frame_type, std::string>> all_frames()
{
    svc::wire_result res;
    res.seq = 3;
    res.client_id = 9;
    res.result = sample_result();
    return {
        {svc::frame_type::hello, svc::encode_hello("tenant-a", true)},
        {svc::frame_type::job, svc::encode_job(sample_job())},
        {svc::frame_type::end_wave, std::string()},
        {svc::frame_type::session, svc::encode_session({6, 4})},
        {svc::frame_type::result, svc::encode_result(res)},
        {svc::frame_type::error, svc::encode_reject({2, 5, "bad job"})},
        {svc::frame_type::wave_done, svc::encode_wave_done({4, "{\"m\":1}"})},
        {svc::frame_type::resume, svc::encode_resume({"tenant-a", 6, 2})},
    };
}

std::string frame_bytes(svc::frame_type t, const std::string& payload)
{
    svc::mem_pipe p;
    svc::write_frame(p, t, payload);
    std::string out;
    out.resize(p.size());
    p.read(out.data(), out.size());
    return out;
}

// --- torn-frame classification ----------------------------------------------

TEST(wire_torn, every_truncation_of_every_frame_type_classifies_exactly)
{
    // Stream layout: remember where each frame ends.
    std::string stream;
    std::vector<std::size_t> boundaries = {0};
    for (const auto& [type, payload] : all_frames()) {
        stream += frame_bytes(type, payload);
        boundaries.push_back(stream.size());
    }

    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
        const std::string torn = stream.substr(0, cut);
        svc::string_source src(torn);
        svc::frame f;
        std::size_t parsed = 0;
        bool tore = false;
        try {
            while (svc::read_frame(src, f)) ++parsed;
        } catch (const svc::wire_error&) {
            tore = true;
        }

        // Every frame wholly inside the cut must have parsed.
        std::size_t whole = 0;
        while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
            ++whole;
        }
        EXPECT_EQ(parsed, whole) << "cut=" << cut;

        const bool at_boundary = boundaries[whole] == cut;
        EXPECT_EQ(tore, !at_boundary)
            << "cut=" << cut << ": a cut " << (at_boundary ? "at" : "inside")
            << " a frame boundary must " << (at_boundary ? "not " : "")
            << "classify as torn";
    }
}

TEST(wire_torn, unknown_type_byte_is_torn_not_eof)
{
    std::string bytes;
    bytes.push_back(static_cast<char>(0x2A));  // no such frame type
    bytes.append(4, '\0');                     // zero-length payload
    svc::string_source src(bytes);
    svc::frame f;
    EXPECT_THROW(svc::read_frame(src, f), svc::wire_error);
}

TEST(wire_torn, oversized_length_prefix_is_rejected_before_allocation)
{
    const std::uint32_t huge = svc::max_frame_payload + 1;
    std::string bytes;
    bytes.push_back(static_cast<char>(svc::frame_type::result));
    for (int i = 0; i < 4; ++i) {
        bytes.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
    }
    svc::string_source src(bytes);
    svc::frame f;
    EXPECT_THROW(svc::read_frame(src, f), svc::wire_error);
}

// --- payload-decoder prefix fuzz --------------------------------------------

/// Every prefix of a canonical payload must decode to nullopt or a valid
/// value — never crash, never throw. The full payload must round-trip.
template <typename Decode>
void fuzz_prefixes(const std::string& payload, Decode&& decode)
{
    for (std::size_t n = 0; n < payload.size(); ++n) {
        EXPECT_NO_THROW((void)decode(payload.substr(0, n))) << "prefix " << n;
    }
    EXPECT_TRUE(decode(payload).has_value());
}

TEST(wire_fuzz, hello_prefixes)
{
    fuzz_prefixes(svc::encode_hello("tenant-a", true),
                  [](const std::string& p) { return svc::decode_hello(p); });
    // The legacy encoding (no capability byte) stays decodable...
    const auto legacy = svc::decode_hello(svc::encode_hello("t", false));
    ASSERT_TRUE(legacy.has_value());
    EXPECT_FALSE(legacy->resumable);
    // ...an out-of-range flag byte and trailing garbage are not.
    EXPECT_FALSE(svc::decode_hello(svc::encode_hello("t", false) + '\x02'));
    EXPECT_FALSE(svc::decode_hello(svc::encode_hello("t", true) + '\x00'));
}

TEST(wire_fuzz, job_prefixes)
{
    const std::string payload = svc::encode_job(sample_job());
    fuzz_prefixes(payload,
                  [](const std::string& p) { return svc::decode_job(p); });
    EXPECT_FALSE(svc::decode_job(payload + 'x'));
}

TEST(wire_fuzz, result_prefixes)
{
    svc::wire_result r;
    r.seq = 11;
    r.client_id = 3;
    r.result = sample_result();
    const std::string payload = svc::encode_result(r);
    fuzz_prefixes(payload,
                  [](const std::string& p) { return svc::decode_result(p); });
    EXPECT_FALSE(svc::decode_result(payload + 'x'));
}

TEST(wire_fuzz, reject_prefixes)
{
    const std::string payload = svc::encode_reject({2, 5, "no"});
    fuzz_prefixes(payload,
                  [](const std::string& p) { return svc::decode_reject(p); });
    EXPECT_FALSE(svc::decode_reject(payload + 'x'));
}

TEST(wire_fuzz, wave_done_prefixes)
{
    const std::string payload = svc::encode_wave_done({4, "{\"rows\":[]}"});
    fuzz_prefixes(payload, [](const std::string& p) {
        return svc::decode_wave_done(p);
    });
    // The JSON is the unprefixed tail, so extra bytes extend it rather than
    // invalidating the frame — only a truncated seq can fail.
    const auto extended = svc::decode_wave_done(payload + 'x');
    ASSERT_TRUE(extended.has_value());
    EXPECT_EQ(extended->merged_json, "{\"rows\":[]}x");
}

TEST(wire_fuzz, resume_prefixes)
{
    const std::string payload = svc::encode_resume({"tenant-a", 6, 2});
    fuzz_prefixes(payload,
                  [](const std::string& p) { return svc::decode_resume(p); });
    EXPECT_FALSE(svc::decode_resume(payload + 'x'));
}

TEST(wire_fuzz, session_prefixes)
{
    const std::string payload = svc::encode_session({7, 8});
    fuzz_prefixes(payload,
                  [](const std::string& p) { return svc::decode_session(p); });
    EXPECT_FALSE(svc::decode_session(payload + 'x'));
}

}  // namespace
