// jsk::svc — durability-layer tests: the vfs fault seam, the store's
// degraded mode and generation-flip error surface, the wave intent log,
// and the resumable session client against a real (restarted-per-
// connection) service.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attacks/explore_sweep.h"
#include "faults/io.h"
#include "svc/client.h"
#include "svc/intent.h"
#include "svc/service.h"
#include "svc/store.h"
#include "svc/vfs.h"

namespace {

using namespace jsk;
namespace fs = std::filesystem;

class durability_test : public ::testing::Test {
protected:
    void SetUp() override
    {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::path(::testing::TempDir()) /
                (std::string("jsk_svc_durability_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string& name) const
    {
        return (fs::path(dir_) / name).string();
    }

    std::string read_file(const std::string& p) const
    {
        std::ifstream in(p, std::ios::binary);
        return {std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>()};
    }

    std::string dir_;
};

// --- vfs: transient faults change latency, never bytes ----------------------

TEST_F(durability_test, vfs_retries_transients_to_full_content)
{
    faults::io_plan plan = faults::io_plan::transient_only(99);
    faults::io_injector inj(plan);
    svc::vfs v(&inj);

    const std::string payload(4096, 'x');
    {
        auto f = v.open_trunc(path("blob"));
        for (int i = 0; i < 8; ++i) f->write(payload);
        f->sync();
        f->close();
    }
    EXPECT_GT(inj.injected(), 0u) << "plan must actually fire to test anything";
    EXPECT_EQ(read_file(path("blob")).size(), payload.size() * 8);
    EXPECT_EQ(read_file(path("blob")), std::string(4096 * 8, 'x'));
}

TEST_F(durability_test, vfs_surfaces_persistent_faults_with_errno)
{
    faults::io_plan plan;
    plan.seed = 5;
    plan.write_enospc_bp = 10'000;  // every write fails
    faults::io_injector inj(plan);
    svc::vfs v(&inj);

    auto f = v.open_trunc(path("blob"));
    try {
        f->write("doomed");
        FAIL() << "write must throw io_error";
    } catch (const svc::io_error& e) {
        EXPECT_EQ(e.code(), ENOSPC);
        EXPECT_NE(std::string(e.what()).find("errno"), std::string::npos);
    }
}

// --- store: generation flip failure is a typed, clean error -----------------

TEST_F(durability_test, failed_current_flip_throws_store_error_and_cleans_tmp)
{
    faults::io_plan plan;
    plan.seed = 3;
    plan.rename_fail_bp = 10'000;  // every rename fails
    faults::io_injector inj(plan);
    svc::vfs v(&inj);

    svc::store_options opt;
    opt.dir = path("store");
    opt.fs = &v;
    try {
        svc::store s(opt);  // first open must flip CURRENT into place
        FAIL() << "construction must throw store_error";
    } catch (const svc::store_error& e) {
        EXPECT_NE(std::string(e.what()).find("errno"), std::string::npos);
    }
    EXPECT_FALSE(fs::exists(fs::path(opt.dir) / "CURRENT.tmp"))
        << "the orphaned tmp file must be cleaned up";
    EXPECT_FALSE(fs::exists(fs::path(opt.dir) / "CURRENT"));

    // The same directory opens fine once the fault clears.
    svc::store_options clean;
    clean.dir = opt.dir;
    svc::store s(clean);
    EXPECT_TRUE(s.put("k", "v"));
}

// --- store: degraded mode ----------------------------------------------------

TEST_F(durability_test, permanent_write_failure_degrades_but_keeps_serving)
{
    svc::store_options seed_opt;
    seed_opt.dir = path("store");
    {
        svc::store seeded(seed_opt);
        ASSERT_TRUE(seeded.put("old", "disk-value"));
        ASSERT_TRUE(seeded.sync());
    }

    faults::io_plan plan;
    plan.seed = 5;
    plan.write_enospc_bp = 10'000;  // disk is full, forever
    faults::io_injector inj(plan);
    svc::vfs v(&inj);

    svc::store_options opt;
    opt.dir = path("store");
    opt.fs = &v;
    svc::store s(opt);
    EXPECT_FALSE(s.degraded());

    // The put fails on disk but MUST be served from session memory.
    EXPECT_TRUE(s.put("new", "mem-value"));
    EXPECT_TRUE(s.degraded());
    ASSERT_TRUE(s.get("new").has_value());
    EXPECT_EQ(*s.get("new"), "mem-value");
    ASSERT_TRUE(s.get("old").has_value());
    EXPECT_EQ(*s.get("old"), "disk-value");

    // Degradation is journaled and counted; sync reports the truth.
    EXPECT_FALSE(s.degraded_log().empty());
    EXPECT_GE(s.stats().queued_promotions, 1u);
    EXPECT_GE(s.stats().degraded_entries, 1u);
    EXPECT_FALSE(s.sync()) << "a degraded store must not claim durability";

    // Compaction refuses while degraded: it would persist a lie.
    EXPECT_THROW(s.compact(), svc::store_error);

    // The disk never recovers, so retries keep failing — and keep queueing.
    EXPECT_FALSE(s.retry_writes());
    EXPECT_TRUE(s.degraded());
}

TEST_F(durability_test, retry_writes_heals_once_the_disk_recovers)
{
    // 50% ENOSPC: deterministic for the seed, guaranteed to both fail and
    // (eventually) succeed. Bounded loops keep the test honest.
    faults::io_plan plan;
    plan.seed = 21;
    plan.write_enospc_bp = 5'000;
    faults::io_injector inj(plan);
    svc::vfs v(&inj);

    svc::store_options opt;
    opt.dir = path("store");
    opt.fs = &v;
    svc::store s(opt);

    // Push puts until one fails.
    int added = 0;
    for (int i = 0; i < 64 && !s.degraded(); ++i) {
        s.put("key-" + std::to_string(i), "value-" + std::to_string(i));
        ++added;
    }
    ASSERT_TRUE(s.degraded()) << "plan never fired within 64 puts";

    bool healed = false;
    for (int i = 0; i < 64 && !healed; ++i) healed = s.retry_writes();
    ASSERT_TRUE(healed) << "50% fault rate never let the queue drain";
    EXPECT_FALSE(s.degraded());

    // Every put — queued or not — must now be durable: reopen cleanly and
    // recall all of them from disk.
    svc::store_options clean;
    clean.dir = opt.dir;
    svc::store reopened(clean);
    for (int i = 0; i < added; ++i) {
        const std::string key = "key-" + std::to_string(i);
        ASSERT_TRUE(reopened.get(key).has_value()) << key;
        EXPECT_EQ(*reopened.get(key), "value-" + std::to_string(i));
    }
}

// --- intent log --------------------------------------------------------------

std::vector<svc::wire_job> intent_jobs()
{
    std::vector<svc::wire_job> jobs;
    for (std::uint64_t i = 0; i < 3; ++i) {
        svc::wire_job j;
        j.client_id = 10 + i;
        j.key.seed = 17;
        j.key.defense = "jskernel";
        j.key.program = "prog-" + std::to_string(i);
        jobs.push_back(j);
    }
    return jobs;
}

TEST_F(durability_test, intent_epoch_is_monotone_across_reopens)
{
    std::uint64_t last = 0;
    for (int i = 0; i < 4; ++i) {
        svc::intent_log log(path("INTENT"), nullptr);
        EXPECT_GT(log.epoch(), last);
        last = log.epoch();
        EXPECT_FALSE(log.pending().has_value());
    }
}

TEST_F(durability_test, uncommitted_begin_survives_reopen_as_pending)
{
    const auto jobs = intent_jobs();
    std::uint64_t epoch = 0;
    {
        svc::intent_log log(path("INTENT"), nullptr);
        epoch = log.epoch();
        log.begin("tenant-a", jobs, /*first_seq=*/5);
        // Crash: destroyed without commit.
    }
    svc::intent_log reopened(path("INTENT"), nullptr);
    ASSERT_TRUE(reopened.pending().has_value());
    const auto& p = *reopened.pending();
    EXPECT_EQ(p.tenant, "tenant-a");
    EXPECT_EQ(p.epoch, epoch);
    EXPECT_EQ(p.first_seq, 5u);
    ASSERT_EQ(p.jobs.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(p.jobs[i].client_id, jobs[i].client_id);
        EXPECT_EQ(p.jobs[i].key.program, jobs[i].key.program);
    }
    EXPECT_GT(reopened.epoch(), epoch);
}

TEST_F(durability_test, committed_wave_leaves_nothing_pending)
{
    {
        svc::intent_log log(path("INTENT"), nullptr);
        log.begin("tenant-a", intent_jobs(), 1);
        log.commit();
    }
    svc::intent_log reopened(path("INTENT"), nullptr);
    EXPECT_FALSE(reopened.pending().has_value());
}

TEST_F(durability_test, intent_log_heals_a_torn_tail)
{
    {
        svc::intent_log log(path("INTENT"), nullptr);
        log.begin("tenant-a", intent_jobs(), 1);
    }
    // Power cut mid-append: garbage after the valid records.
    {
        std::ofstream out(path("INTENT"), std::ios::binary | std::ios::app);
        out << "\x01\x02garbage";
    }
    svc::intent_log reopened(path("INTENT"), nullptr);
    ASSERT_TRUE(reopened.pending().has_value());
    EXPECT_EQ(reopened.pending()->tenant, "tenant-a");
}

// --- session client ----------------------------------------------------------

std::vector<svc::wire_job> wave_jobs()
{
    const auto cves = attacks::cve_ids();
    std::vector<svc::wire_job> jobs;
    for (std::uint64_t i = 0; i < 2; ++i) {
        for (const char* defense : {"plain", "jskernel"}) {
            svc::wire_job j;
            j.client_id = jobs.size() + 1;
            j.key.seed = 17;
            j.key.defense = defense;
            j.key.program = cves[i];
            jobs.push_back(j);
        }
    }
    return jobs;
}

/// One service process incarnation per connection, over a shared store
/// directory — the "server restarted between dials" transport.
svc::session_client::transport restarting_transport(const std::string& dir)
{
    return [dir](const std::string& request) {
        svc::service_options so;
        so.store_dir = dir;
        svc::service s(so);
        svc::string_source in(request);
        svc::mem_pipe out;
        s.serve(in, out);
        std::string response;
        response.resize(out.size());
        out.read(response.data(), response.size());
        return response;
    };
}

TEST_F(durability_test, client_completes_a_wave_over_a_clean_transport)
{
    std::uint64_t slept = 0;
    svc::session_client::options copt;
    copt.tenant = "t";
    copt.sleep = [&](std::uint64_t ns) { slept += ns; };
    svc::session_client client(restarting_transport(path("store")), copt);
    const auto outcome = client.run_wave(wave_jobs());
    EXPECT_TRUE(outcome.complete);
    EXPECT_EQ(outcome.attempts, 1u);
    EXPECT_EQ(outcome.resumes, 0u);
    EXPECT_EQ(outcome.resubmits, 0u);
    EXPECT_EQ(slept, 0u) << "no retry, no backoff";
    EXPECT_EQ(outcome.results.size(), wave_jobs().size());
    EXPECT_FALSE(outcome.merged_json.empty());
}

TEST_F(durability_test, client_resumes_after_a_torn_response)
{
    // Reference: the same wave over a clean transport.
    svc::session_client::options ref_opt;
    ref_opt.tenant = "t";
    svc::session_client ref(restarting_transport(path("ref-store")), ref_opt);
    const auto want = ref.run_wave(wave_jobs());
    ASSERT_TRUE(want.complete);

    // Tear every first response at each of several cut points; the client
    // must resume and converge on byte-identical results.
    const auto inner = restarting_transport(path("store"));
    for (const std::size_t cut : {1u, 9u, 40u, 120u}) {
        fs::remove_all(path("store"));
        unsigned calls = 0;
        std::uint64_t slept = 0;
        svc::session_client::options copt;
        copt.tenant = "t";
        copt.sleep = [&](std::uint64_t ns) { slept += ns; };
        svc::session_client client(
            [&](const std::string& request) {
                const std::string full = inner(request);
                return calls++ == 0 ? full.substr(0, std::min(cut, full.size()))
                                    : full;
            },
            copt);
        const auto outcome = client.run_wave(wave_jobs());
        EXPECT_TRUE(outcome.complete) << "cut=" << cut;
        EXPECT_GE(outcome.attempts, 2u) << "cut=" << cut;
        EXPECT_EQ(outcome.resumes + outcome.resubmits, outcome.attempts - 1)
            << "cut=" << cut;
        EXPECT_GT(slept, 0u) << "retries must back off";
        EXPECT_EQ(outcome.merged_json, want.merged_json) << "cut=" << cut;
        ASSERT_EQ(outcome.results.size(), want.results.size()) << "cut=" << cut;
        for (std::size_t i = 0; i < want.results.size(); ++i) {
            EXPECT_EQ(svc::encode_result(outcome.results[i]),
                      svc::encode_result(want.results[i]))
                << "cut=" << cut << " result " << i;
        }
    }
}

TEST_F(durability_test, client_throws_when_a_replay_contradicts_a_held_seq)
{
    svc::wire_result first;
    first.seq = 1;
    first.client_id = 1;
    first.result.tasks_executed = 1;
    svc::wire_result lie = first;
    lie.result.tasks_executed = 2;  // same seq, different bytes

    unsigned calls = 0;
    svc::session_client::options copt;
    copt.tenant = "t";
    svc::session_client client(
        [&](const std::string&) {
            svc::mem_pipe out;
            svc::write_frame(out, svc::frame_type::session,
                             svc::encode_session({1, 1}));
            svc::write_frame(out, svc::frame_type::result,
                             svc::encode_result(calls++ == 0 ? first : lie));
            // No wave_done: force a resume, which then contradicts.
            std::string response;
            response.resize(out.size());
            out.read(response.data(), response.size());
            return response;
        },
        copt);
    EXPECT_THROW(client.run_wave(wave_jobs()), svc::wire_error);
}

TEST_F(durability_test, client_resubmits_when_there_is_nothing_to_resume)
{
    const auto inner = restarting_transport(path("store"));
    unsigned calls = 0;
    svc::session_client::options copt;
    copt.tenant = "t";
    svc::session_client client(
        [&](const std::string& request) {
            const unsigned call = calls++;
            if (call == 0) {
                // Session frame only, then the connection dies.
                svc::mem_pipe out;
                svc::write_frame(out, svc::frame_type::session,
                                 svc::encode_session({1, 1}));
                std::string response;
                response.resize(out.size());
                out.read(response.data(), response.size());
                return response;
            }
            if (call == 1) {
                // The resume is disowned.
                svc::mem_pipe out;
                svc::write_frame(out, svc::frame_type::error,
                                 svc::encode_reject({0, 0, "nothing to resume"}));
                std::string response;
                response.resize(out.size());
                out.read(response.data(), response.size());
                return response;
            }
            return inner(request);
        },
        copt);
    const auto outcome = client.run_wave(wave_jobs());
    EXPECT_TRUE(outcome.complete);
    EXPECT_EQ(outcome.resumes, 1u);
    EXPECT_EQ(outcome.resubmits, 1u);
    EXPECT_EQ(outcome.results.size(), wave_jobs().size());
}

TEST_F(durability_test, backoff_is_pure_exponential_and_capped)
{
    static_assert(svc::backoff_ns(0) == 1'000'000);
    static_assert(svc::backoff_ns(1) == 2'000'000);
    static_assert(svc::backoff_ns(5) == 32'000'000);
    static_assert(svc::backoff_ns(10) == 1'000'000'000);
    static_assert(svc::backoff_ns(63) == 1'000'000'000);
    for (unsigned a = 1; a < 20; ++a) {
        EXPECT_GE(svc::backoff_ns(a), svc::backoff_ns(a - 1));
        EXPECT_LE(svc::backoff_ns(a), 1'000'000'000u);
    }
}

}  // namespace
