// jsk::svc — sweep-service tests: the determinism contract (arrival order,
// worker count, snapshot mode and cache state all erased from response
// bytes), exact pinned warm-cache hit/miss accounting, multi-tenant
// metrics, pool resize between waves, and the framed wire conversation.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/explore_sweep.h"
#include "faults/plan.h"
#include "svc/service.h"

namespace {

using namespace jsk;
namespace fs = std::filesystem;

svc::job make_job(std::uint64_t client_id, const std::string& program,
                  const std::string& defense, const std::string& plan = "",
                  std::uint64_t seed = 17)
{
    svc::job j;
    j.client_id = client_id;
    j.key.seed = seed;
    j.key.plan = plan;
    j.key.decisions = "";
    j.key.defense = defense;
    j.key.program = program;
    return j;
}

/// The shared 4-job explore matrix: two CVEs x {plain, jskernel}.
std::vector<svc::job> matrix_jobs()
{
    const auto cves = attacks::cve_ids();
    return {
        make_job(1, cves[0], "plain"),
        make_job(2, cves[0], "jskernel"),
        make_job(3, cves[1], "plain"),
        make_job(4, cves[1], "jskernel"),
    };
}

svc::wave_result run_jobs(svc::service& s, std::vector<svc::job> jobs,
                          const std::string& tenant = "default")
{
    auto& sess = s.connect(tenant);
    for (auto& j : jobs) sess.submit(std::move(j));
    return sess.flush();
}

class service_test : public ::testing::Test {
protected:
    void SetUp() override
    {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::path(::testing::TempDir()) /
                (std::string("jsk_svc_service_") + info->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

// --- determinism contract ---------------------------------------------------

TEST_F(service_test, arrival_order_is_erased_from_response_bytes)
{
    svc::service a({});
    svc::service b({});
    auto jobs = matrix_jobs();
    const auto wave_a = run_jobs(a, jobs);
    std::reverse(jobs.begin(), jobs.end());
    const auto wave_b = run_jobs(b, std::move(jobs));

    EXPECT_EQ(wave_a.merged_json, wave_b.merged_json);
    ASSERT_EQ(wave_a.results.size(), wave_b.results.size());
    for (std::size_t i = 0; i < wave_a.results.size(); ++i) {
        EXPECT_EQ(wave_a.jobs[i].client_id, wave_b.jobs[i].client_id);
        EXPECT_EQ(wave_a.results[i], wave_b.results[i]);
    }
}

TEST_F(service_test, worker_count_is_erased_from_response_bytes)
{
    std::string baseline;
    for (const std::size_t jobs : {1u, 2u, 8u}) {
        svc::service_options opt;
        opt.jobs = jobs;
        svc::service s(opt);
        const auto wave = run_jobs(s, matrix_jobs());
        if (baseline.empty()) {
            baseline = wave.merged_json;
        } else {
            EXPECT_EQ(wave.merged_json, baseline) << "jobs=" << jobs;
        }
    }
    EXPECT_FALSE(baseline.empty());
}

TEST_F(service_test, snapshot_serving_is_a_throughput_knob_only)
{
    svc::service_options no_snaps;
    no_snaps.snapshots = false;
    svc::service fresh_worlds(no_snaps);
    svc::service snapshotted({});
    EXPECT_EQ(run_jobs(fresh_worlds, matrix_jobs()).merged_json,
              run_jobs(snapshotted, matrix_jobs()).merged_json);
}

// --- cache accounting -------------------------------------------------------

TEST_F(service_test, warm_cache_recalls_with_exact_pinned_hit_counts)
{
    svc::service_options opt;
    opt.store_dir = dir_;
    std::string cold_json;
    {
        svc::service s(opt);
        auto jobs = matrix_jobs();
        jobs.push_back(make_job(5, jobs[0].key.program, "plain"));  // duplicate witness
        const auto cold = run_jobs(s, jobs);
        EXPECT_EQ(cold.trials, 4u);  // the duplicate dedups into one trial...
        EXPECT_EQ(cold.hits_mem, 0u);  // ...which is not a cache hit
        EXPECT_EQ(cold.hits_disk, 0u);
        cold_json = cold.merged_json;

        // Same wave again in-process: everything is memory-resident.
        jobs = matrix_jobs();
        jobs.push_back(make_job(5, jobs[0].key.program, "plain"));
        const auto warm = run_jobs(s, std::move(jobs));
        EXPECT_EQ(warm.trials, 0u);
        EXPECT_EQ(warm.hits_mem, 5u);
        EXPECT_EQ(warm.hits_disk, 0u);
        EXPECT_EQ(warm.merged_json, cold_json);
    }
    // A fresh process over the same store: recalled from disk, byte-identical
    // aggregate, zero simulation.
    svc::service s(opt);
    auto jobs = matrix_jobs();
    jobs.push_back(make_job(5, jobs[0].key.program, "plain"));
    const auto recalled = run_jobs(s, std::move(jobs));
    EXPECT_EQ(recalled.trials, 0u);
    EXPECT_EQ(recalled.hits_disk, 4u);
    EXPECT_EQ(recalled.hits_mem, 1u);  // the duplicate, promoted by the disk hit
    EXPECT_EQ(recalled.merged_json, cold_json);
    ASSERT_NE(s.disk(), nullptr);
    EXPECT_EQ(s.disk()->stats().loaded_records, 4u);
    EXPECT_EQ(s.disk()->stats().recalls, 4u);
}

TEST_F(service_test, uncached_and_cached_baselines_agree)
{
    // The contract that makes the cache sound: a memory-only service and a
    // store-backed one produce identical bytes for the same job set.
    svc::service_options with_store;
    with_store.store_dir = dir_;
    svc::service cached(with_store);
    svc::service uncached({});
    EXPECT_EQ(run_jobs(cached, matrix_jobs()).merged_json,
              run_jobs(uncached, matrix_jobs()).merged_json);
}

// --- chaos-path jobs --------------------------------------------------------

TEST_F(service_test, chaos_jobs_replay_by_seed_and_plan)
{
    const auto cves = attacks::cve_ids();
    std::vector<svc::job> jobs = {
        make_job(1, cves[0], "jskernel", faults::plan::perturb_only(3).str()),
        make_job(2, cves[0], "plain", faults::plan::perturb_only(3).str()),
        make_job(3, "program:42", "jskernel"),
    };
    svc::service a({});
    svc::service b({});
    const auto wave_a = run_jobs(a, jobs);
    const auto wave_b = run_jobs(b, jobs);
    EXPECT_EQ(wave_a.merged_json, wave_b.merged_json);
    for (std::size_t i = 0; i < wave_a.results.size(); ++i) {
        EXPECT_GT(wave_a.results[i].tasks_executed, 0u);
        EXPECT_FALSE(wave_a.results[i].hit_task_cap);
        EXPECT_EQ(wave_a.results[i].trace_digest, wave_b.results[i].trace_digest);
        if (wave_a.jobs[i].key.defense == "jskernel") {
            EXPECT_NE(wave_a.results[i].journal_digest, 0u);
        }
    }
    // Second flush of the same set: all served from memory.
    const auto warm = run_jobs(a, std::move(jobs));
    EXPECT_EQ(warm.trials, 0u);
    EXPECT_EQ(warm.hits_mem, 3u);
    EXPECT_EQ(warm.merged_json, wave_a.merged_json);
}

// --- validation -------------------------------------------------------------

TEST_F(service_test, submit_rejects_invalid_witnesses)
{
    svc::service s({});
    auto& sess = s.connect("t");
    EXPECT_THROW(sess.submit(make_job(1, "no-such-cve", "plain")),
                 std::invalid_argument);
    EXPECT_THROW(sess.submit(make_job(2, attacks::cve_ids()[0], "no-such-defense")),
                 std::invalid_argument);
    EXPECT_THROW(sess.submit(make_job(3, "program:not-a-number", "jskernel")),
                 std::invalid_argument);
    auto chaos_with_decisions =
        make_job(4, attacks::cve_ids()[0], "plain", faults::plan{}.str());
    chaos_with_decisions.key.decisions = "0,1";
    EXPECT_THROW(sess.submit(std::move(chaos_with_decisions)), std::invalid_argument);
    auto bad_plan = make_job(5, attacks::cve_ids()[0], "plain");
    bad_plan.key.plan = "nonsense=;;";
    EXPECT_THROW(sess.submit(std::move(bad_plan)), std::invalid_argument);
    auto chaos_defense =
        make_job(6, attacks::cve_ids()[0], "deterfox", faults::plan{}.str());
    EXPECT_THROW(sess.submit(std::move(chaos_defense)), std::invalid_argument);
    EXPECT_EQ(sess.pending(), 0u);
    // Valid explore defenses other than plain/jskernel are accepted.
    sess.submit(make_job(7, attacks::cve_ids()[0], "deterfox"));
    EXPECT_EQ(sess.pending(), 1u);
}

// --- tenancy ----------------------------------------------------------------

TEST_F(service_test, tenants_account_separately_and_fold_deterministically)
{
    svc::service s({});
    const auto acme = run_jobs(s, matrix_jobs(), "acme");
    auto two = matrix_jobs();
    two.resize(2);
    const auto beta = run_jobs(s, std::move(two), "beta");
    EXPECT_EQ(acme.trials, 4u);
    EXPECT_EQ(beta.trials, 0u);  // the shared cache spans tenants
    EXPECT_EQ(beta.hits_mem, 2u);

    auto& tenants = s.tenants();
    EXPECT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants.get("acme").get_counter("svc.jobs").value(), 4u);
    EXPECT_EQ(tenants.get("acme").get_counter("svc.trials").value(), 4u);
    EXPECT_EQ(tenants.get("beta").get_counter("svc.jobs").value(), 2u);
    EXPECT_EQ(tenants.get("beta").get_counter("svc.cache_hits_mem").value(), 2u);
    const auto total = tenants.merged();
    EXPECT_EQ(total.counters().at("svc.jobs").value(), 6u);
    EXPECT_EQ(total.counters().at("svc.waves").value(), 2u);
    EXPECT_EQ(total.counters().at("svc.trials").value(), 4u);
    // Snapshot is deterministic and contains both sections.
    const std::string snap = s.snapshot_json();
    EXPECT_NE(snap.find("\"acme\""), std::string::npos);
    EXPECT_NE(snap.find("\"beta\""), std::string::npos);
    EXPECT_EQ(snap, s.snapshot_json());
}

// --- resize -----------------------------------------------------------------

TEST_F(service_test, resize_between_waves_preserves_bytes_and_cache)
{
    svc::service_options opt;
    opt.jobs = 1;
    svc::service s(opt);
    const auto before = run_jobs(s, matrix_jobs());
    s.resize(2);
    EXPECT_EQ(s.jobs(), 2u);
    const auto warm = run_jobs(s, matrix_jobs());
    EXPECT_EQ(warm.merged_json, before.merged_json);
    EXPECT_EQ(warm.trials, 0u);
    EXPECT_EQ(warm.hits_mem, 4u);
    // And fresh simulation on the resized pool still matches: different
    // seed, computed once at jobs=2, once by a jobs=2-from-birth service.
    auto moved = matrix_jobs();
    for (auto& j : moved) j.key.seed = 23;
    const auto resized_fresh = run_jobs(s, moved);
    svc::service_options opt2;
    opt2.jobs = 2;
    svc::service born_wide(opt2);
    EXPECT_EQ(resized_fresh.merged_json, run_jobs(born_wide, moved).merged_json);
}

// --- wire conversation ------------------------------------------------------

TEST_F(service_test, serve_streams_canonical_frames_and_survives_bad_jobs)
{
    svc::service s({});
    svc::mem_pipe in;
    svc::mem_pipe out;
    svc::write_frame(in, svc::frame_type::hello, svc::encode_hello("wire-tenant"));
    svc::write_frame(in, svc::frame_type::job,
                     svc::encode_job({99, make_job(99, "no-such-cve", "plain").key}));
    auto jobs = matrix_jobs();
    std::reverse(jobs.begin(), jobs.end());  // arrival order must not matter
    for (const auto& j : jobs) {
        svc::write_frame(in, svc::frame_type::job, svc::encode_job({j.client_id, j.key}));
    }
    svc::write_frame(in, svc::frame_type::end_wave, "");

    svc::wave_result seen;
    const std::size_t waves =
        s.serve(in, out, [&](const svc::wave_result& w) { seen = w; });
    EXPECT_EQ(waves, 1u);
    EXPECT_EQ(seen.jobs.size(), 4u);

    // Frame 1: the rejection, emitted at submit time.
    svc::frame f;
    ASSERT_TRUE(svc::read_frame(out, f));
    ASSERT_EQ(f.type, svc::frame_type::error);
    const auto reject = svc::decode_reject(f.payload);
    ASSERT_TRUE(reject.has_value());
    EXPECT_EQ(reject->client_id, 99u);
    EXPECT_NE(reject->message.find("unknown program"), std::string::npos);

    // Then one result frame per accepted job, in canonical (not arrival)
    // order and consecutively sequence-numbered from 1 (the reject carries
    // seq 0: advisory, outside the replayable stream), then wave_done
    // carrying the merged JSON.
    EXPECT_EQ(reject->seq, 0u);
    for (std::size_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(svc::read_frame(out, f));
        ASSERT_EQ(f.type, svc::frame_type::result) << "frame " << i;
        const auto res = svc::decode_result(f.payload);
        ASSERT_TRUE(res.has_value());
        EXPECT_EQ(res->seq, i + 1);
        EXPECT_EQ(res->client_id, seen.jobs[i].client_id);
        EXPECT_EQ(res->result, seen.results[i]);
    }
    ASSERT_TRUE(svc::read_frame(out, f));
    EXPECT_EQ(f.type, svc::frame_type::wave_done);
    const auto done = svc::decode_wave_done(f.payload);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->seq, 5u);
    EXPECT_EQ(done->merged_json, seen.merged_json);
    EXPECT_FALSE(svc::read_frame(out, f));

    // The wave's bytes equal a direct in-process run of the same set.
    svc::service direct({});
    EXPECT_EQ(seen.merged_json, run_jobs(direct, matrix_jobs()).merged_json);
    EXPECT_EQ(s.tenants().get("wire-tenant").get_counter("svc.jobs").value(), 4u);
}

TEST_F(service_test, eof_flushes_a_trailing_wave)
{
    svc::service s({});
    svc::mem_pipe in;
    svc::mem_pipe out;
    const auto job = matrix_jobs()[0];
    svc::write_frame(in, svc::frame_type::job, svc::encode_job({job.client_id, job.key}));
    // No end_wave: the stream just ends.
    EXPECT_EQ(s.serve(in, out), 1u);
    svc::frame f;
    ASSERT_TRUE(svc::read_frame(out, f));
    EXPECT_EQ(f.type, svc::frame_type::result);
    ASSERT_TRUE(svc::read_frame(out, f));
    EXPECT_EQ(f.type, svc::frame_type::wave_done);
}

}  // namespace
