// jsk::svc — the crash-recovery sweep (the durability capstone).
//
// svc::run_crash_matrix counts every crash-point boundary one full wave
// conversation crosses — store appends, shard fsyncs, the CURRENT flip,
// intent-journal records, every response frame's bytes — then kills the
// service's first incarnation at each boundary k = 1..N in a fresh store
// directory and drives the wave to completion through session_client's
// resume protocol. The assertion is byte-level: the merged JSON and the
// re-encoded result-frame stream of every crashed-and-recovered run must
// equal the fault-free reference, with no acknowledged result lost and no
// sequence contradicted (a contradiction throws out of the client and
// fails the test by exception).
//
// Sizing: the full 12-CVE wave is the CI contract (`ctest -L crash`).
// Sanitized builds and JSK_CRASH_SMOKE trim the wave to 3 CVEs so the
// matrix stays minutes, not hours; JSK_CRASH_FULL forces the full wave
// anywhere.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "attacks/explore_sweep.h"
#include "faults/io.h"
#include "svc/crash.h"
#include "svc/service.h"

namespace {

using namespace jsk;
namespace fs = std::filesystem;

bool sanitized_build()
{
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
    return true;
#else
    return false;
#endif
#else
    return false;
#endif
}

std::size_t wave_cves()
{
    if (std::getenv("JSK_CRASH_FULL") != nullptr) return 12;
    if (std::getenv("JSK_CRASH_SMOKE") != nullptr) return 3;
    return sanitized_build() ? 3 : 12;
}

std::vector<svc::wire_job> cve_wave(std::size_t n)
{
    const auto cves = attacks::cve_ids();
    if (n > cves.size()) n = cves.size();
    std::vector<svc::wire_job> jobs;
    for (std::size_t i = 0; i < n; ++i) {
        svc::wire_job j;
        j.client_id = i + 1;
        j.key.seed = 17;
        j.key.defense = "jskernel";
        j.key.program = cves[i];
        jobs.push_back(j);
    }
    return jobs;
}

class crash_sweep_test : public ::testing::Test {
protected:
    void SetUp() override
    {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::path(::testing::TempDir()) /
                (std::string("jsk_svc_crash_") + info->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

TEST_F(crash_sweep_test, every_crash_point_recovers_byte_identically)
{
    svc::crash_matrix_options opt;
    opt.jobs = cve_wave(wave_cves());
    opt.dir = dir_;

    const auto report = svc::run_crash_matrix(opt);

    EXPECT_GT(report.crash_points, 0u);
    EXPECT_EQ(report.runs, report.crash_points);
    EXPECT_EQ(report.crashes, report.runs)
        << "each matrix run kills its first incarnation exactly once";
    // Most crash points need a recovery incarnation; a few fire after the
    // final flush (the client already holds everything), so the bound is
    // strict-greater rather than double.
    EXPECT_GT(report.incarnations, report.runs);
    EXPECT_GT(report.resumes + report.resubmits, 0u);
    EXPECT_EQ(report.io_failures, 0u) << "no fault plan was armed";
    EXPECT_FALSE(report.reference_json.empty());
    EXPECT_FALSE(report.reference_frames.empty());
    EXPECT_TRUE(report.ok())
        << report.mismatches.size() << " of " << report.crash_points
        << " crash points diverged; first bad k="
        << (report.mismatches.empty() ? 0 : report.mismatches.front());
}

TEST_F(crash_sweep_test, matrix_reference_matches_a_direct_service_run)
{
    svc::crash_matrix_options opt;
    opt.jobs = cve_wave(2);
    opt.dir = dir_;
    const auto report = svc::run_crash_matrix(opt);
    ASSERT_TRUE(report.ok());

    // The same wave through the plain in-process API — no wire, no client,
    // no crash machinery — must merge to the same JSON.
    svc::service_options so;
    so.store_dir = (fs::path(dir_) / "direct").string();
    svc::service s(so);
    auto& sess = s.connect("crash-matrix");
    for (const auto& wj : opt.jobs) {
        svc::job j;
        j.client_id = wj.client_id;
        j.key = wj.key;
        sess.submit(std::move(j));
    }
    const auto wave = sess.flush();
    EXPECT_EQ(report.reference_json, wave.merged_json);
}

TEST_F(crash_sweep_test, matrix_survives_layered_fault_plans)
{
    // Crash points stacked on live fault rates: transient-only (latency
    // noise) and full chaos (every failure mode at once). Recovery must
    // still converge to fault-free bytes — outcomes are pure functions of
    // witness keys, so even a store lost to ENOSPC re-derives them.
    const std::size_t n = sanitized_build() ? 2 : 3;
    for (const auto& base :
         {faults::io_plan::transient_only(7), faults::io_plan::full_io_chaos(11)}) {
        svc::crash_matrix_options opt;
        opt.jobs = cve_wave(n);
        opt.dir = (fs::path(dir_) / ("plan-" + std::to_string(base.seed))).string();
        opt.base_plan = base;
        opt.max_attempts = 16;
        const auto report = svc::run_crash_matrix(opt);
        EXPECT_GT(report.crash_points, 0u) << base.str();
        EXPECT_TRUE(report.ok())
            << base.str() << ": " << report.mismatches.size() << " of "
            << report.crash_points << " crash points diverged; first bad k="
            << (report.mismatches.empty() ? 0 : report.mismatches.front());
    }
}

}  // namespace
