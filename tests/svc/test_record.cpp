// jsk::svc — record format, witness serialization and codec tests.
//
// The bytes pinned here are a compatibility contract: the store's on-disk
// records, the wire format's job payloads, and the cache's shard assignment
// all digest par::serialize(witness_key). If any golden test in this file
// needs updating, every existing store directory becomes unreadable — that
// is a format break and must ship as a new generation format, not a silent
// re-pin.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "par/cache.h"
#include "sim/bytes.h"
#include "svc/record.h"
#include "svc/wire.h"

namespace {

using namespace jsk;

par::witness_key sample_key()
{
    par::witness_key k;
    k.seed = 0x0123456789abcdefULL;
    k.plan = "p";
    k.decisions = "d";
    k.defense = "plain";
    k.program = "cve";
    return k;
}

// --- witness serialization --------------------------------------------------

TEST(witness_bytes, golden_serialization)
{
    const std::string bytes = par::serialize(sample_key());
    const unsigned char expected[] = {
        0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01,  // seed, LE
        0x01, 0x00, 0x00, 0x00, 'p',                     // plan
        0x01, 0x00, 0x00, 0x00, 'd',                     // decisions
        0x05, 0x00, 0x00, 0x00, 'p', 'l', 'a', 'i', 'n', // defense
        0x03, 0x00, 0x00, 0x00, 'c', 'v', 'e',           // program
    };
    ASSERT_EQ(bytes.size(), sizeof(expected));
    for (std::size_t i = 0; i < sizeof(expected); ++i) {
        EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i]) << "byte " << i;
    }
}

TEST(witness_bytes, round_trip)
{
    const par::witness_key k = sample_key();
    const auto back = par::parse_witness(par::serialize(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);

    const par::witness_key empty{};
    const auto back_empty = par::parse_witness(par::serialize(empty));
    ASSERT_TRUE(back_empty.has_value());
    EXPECT_EQ(*back_empty, empty);
}

TEST(witness_bytes, parse_rejects_truncation_and_trailing_bytes)
{
    const std::string bytes = par::serialize(sample_key());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        EXPECT_FALSE(par::parse_witness(bytes.substr(0, cut)).has_value())
            << "accepted a " << cut << "-byte prefix";
    }
    EXPECT_FALSE(par::parse_witness(bytes + "x").has_value());
}

TEST(witness_bytes, length_prefixes_separate_fields)
{
    // ("ab","c") and ("a","bc") must not serialize (or hash) alike.
    par::witness_key a = sample_key();
    a.plan = "ab";
    a.decisions = "c";
    par::witness_key b = sample_key();
    b.plan = "a";
    b.decisions = "bc";
    EXPECT_NE(par::serialize(a), par::serialize(b));
    EXPECT_NE(par::hash(a), par::hash(b));
}

TEST(witness_bytes, hash_equals_fnv1a_of_serialized_form)
{
    const par::witness_key keys[] = {
        par::witness_key{},
        sample_key(),
        {42, "", "0,1,2", "jskernel", "cve-2018-0497"},
        {~0ULL, "seed=9;", "", "plain", "program:7"},
    };
    for (const auto& k : keys) {
        EXPECT_EQ(par::hash(k), par::fnv1a(par::serialize(k)));
    }
}

TEST(witness_bytes, hash_golden_pin)
{
    // fnv1a of the empty-key serialization (8 zero bytes + four zero u32
    // length prefixes): recomputable with any external FNV-1a tool.
    EXPECT_EQ(par::hash(par::witness_key{}),
              par::fnv1a(std::string(8 + 4 * 4, '\0')));
}

// --- CRC32 ------------------------------------------------------------------

TEST(crc32, ieee_check_value)
{
    // The canonical CRC-32/IEEE check value.
    EXPECT_EQ(sim::bytes::crc32(std::string("123456789")), 0xCBF43926u);
    EXPECT_EQ(sim::bytes::crc32(std::string()), 0u);
}

TEST(crc32, seed_chains_incremental_computation)
{
    const std::string data = "the quick brown fox";
    const std::uint32_t whole = sim::bytes::crc32(data);
    const std::uint32_t first = sim::bytes::crc32(data.data(), 9);
    const std::uint32_t chained = sim::bytes::crc32(data.data() + 9, data.size() - 9, first);
    EXPECT_EQ(chained, whole);
}

// --- job_result codec -------------------------------------------------------

TEST(job_result_codec, round_trip)
{
    svc::job_result r;
    r.triggered = true;
    r.hit_task_cap = true;
    r.tasks_executed = 123456;
    r.faults_injected = 17;
    r.journal_digest = 0xdeadbeefcafef00dULL;
    r.trace_digest = 0x0123456789abcdefULL;
    r.decisions = "0,1,1,0";
    const auto back = svc::parse_result(svc::serialize(r));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, r);
}

TEST(job_result_codec, rejects_unknown_flags_truncation_and_trailers)
{
    std::string bytes = svc::serialize(svc::job_result{});
    std::string bad_flags = bytes;
    bad_flags[0] = static_cast<char>(0x04);  // undefined flag bit
    EXPECT_FALSE(svc::parse_result(bad_flags).has_value());
    EXPECT_FALSE(svc::parse_result(bytes.substr(0, bytes.size() - 1)).has_value());
    EXPECT_FALSE(svc::parse_result(bytes + "z").has_value());
}

// --- record framing ---------------------------------------------------------

TEST(record_framing, append_then_parse)
{
    std::string buf;
    svc::append_record(buf, "key-bytes", "value-bytes");
    EXPECT_EQ(buf.size(), svc::record_overhead + 9 + 11);

    svc::record rec;
    svc::record_status status = svc::record_status::bad_crc;
    const std::size_t used = svc::parse_record(buf.data(), buf.size(), rec, status);
    EXPECT_EQ(status, svc::record_status::ok);
    EXPECT_EQ(used, buf.size());
    EXPECT_EQ(rec.key, "key-bytes");
    EXPECT_EQ(rec.value, "value-bytes");
}

TEST(record_framing, every_truncation_point_is_truncated_not_ok)
{
    std::string buf;
    svc::append_record(buf, "k", "v");
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
        svc::record rec;
        svc::record_status status = svc::record_status::ok;
        const std::size_t used = svc::parse_record(buf.data(), cut, rec, status);
        EXPECT_EQ(used, 0u);
        EXPECT_EQ(status, svc::record_status::truncated) << "cut at " << cut;
    }
}

TEST(record_framing, any_flipped_byte_fails_the_crc)
{
    std::string pristine;
    svc::append_record(pristine, "key", "value");
    for (std::size_t i = 0; i < pristine.size(); ++i) {
        std::string buf = pristine;
        buf[i] = static_cast<char>(buf[i] ^ 0x40);
        svc::record rec;
        svc::record_status status = svc::record_status::ok;
        const std::size_t used = svc::parse_record(buf.data(), buf.size(), rec, status);
        // A flipped length byte may re-frame the record as truncated; any
        // flip that leaves the framing plausible must be caught by the CRC.
        EXPECT_EQ(used, 0u) << "flip at " << i;
        EXPECT_NE(status, svc::record_status::ok) << "flip at " << i;
    }
}

TEST(record_framing, consecutive_records_self_delimit)
{
    std::string buf;
    svc::append_record(buf, "a", "1");
    svc::append_record(buf, "bb", "22");
    svc::record rec;
    svc::record_status status = svc::record_status::bad_crc;
    const std::size_t first = svc::parse_record(buf.data(), buf.size(), rec, status);
    ASSERT_EQ(status, svc::record_status::ok);
    EXPECT_EQ(rec.key, "a");
    const std::size_t second =
        svc::parse_record(buf.data() + first, buf.size() - first, rec, status);
    ASSERT_EQ(status, svc::record_status::ok);
    EXPECT_EQ(first + second, buf.size());
    EXPECT_EQ(rec.key, "bb");
    EXPECT_EQ(rec.value, "22");
}

// --- wire frames ------------------------------------------------------------

TEST(wire_frames, frame_round_trip_over_mem_pipe)
{
    svc::mem_pipe pipe;
    svc::write_frame(pipe, svc::frame_type::hello, svc::encode_hello("tenant-a"));
    svc::write_frame(pipe, svc::frame_type::end_wave, "");

    svc::frame f;
    ASSERT_TRUE(svc::read_frame(pipe, f));
    EXPECT_EQ(f.type, svc::frame_type::hello);
    const auto hello = svc::decode_hello(f.payload);
    ASSERT_TRUE(hello.has_value());
    EXPECT_EQ(hello->tenant, "tenant-a");
    EXPECT_FALSE(hello->resumable);
    ASSERT_TRUE(svc::read_frame(pipe, f));
    EXPECT_EQ(f.type, svc::frame_type::end_wave);
    EXPECT_TRUE(f.payload.empty());
    EXPECT_FALSE(svc::read_frame(pipe, f));  // clean EOF
}

TEST(wire_frames, torn_streams_throw_clean_eof_does_not)
{
    svc::mem_pipe pipe;
    svc::write_frame(pipe, svc::frame_type::job,
                     svc::encode_job({7, sample_key()}));
    // Replay only a prefix: mid-payload EOF is a wire error, not a clean end.
    std::string bytes(pipe.size(), '\0');
    pipe.read(bytes.data(), bytes.size());
    svc::mem_pipe torn;
    torn.write(bytes.data(), bytes.size() - 3);
    svc::frame f;
    EXPECT_THROW(svc::read_frame(torn, f), svc::wire_error);

    svc::mem_pipe header_only;
    header_only.write(bytes.data(), 3);
    EXPECT_THROW(svc::read_frame(header_only, f), svc::wire_error);
}

TEST(wire_frames, typed_payload_round_trips)
{
    const auto job = svc::decode_job(svc::encode_job({9, sample_key()}));
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->client_id, 9u);
    EXPECT_EQ(job->key, sample_key());

    svc::job_result res;
    res.triggered = true;
    res.decisions = "1,0";
    const auto result = svc::decode_result(svc::encode_result({11, 3, res}));
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->seq, 11u);
    EXPECT_EQ(result->client_id, 3u);
    EXPECT_EQ(result->result, res);

    const auto reject =
        svc::decode_reject(svc::encode_reject({0, 0, "unknown program"}));
    ASSERT_TRUE(reject.has_value());
    EXPECT_EQ(reject->seq, 0u);
    EXPECT_EQ(reject->client_id, 0u);
    EXPECT_EQ(reject->message, "unknown program");

    const auto resumable_hello =
        svc::decode_hello(svc::encode_hello("t", /*resumable=*/true));
    ASSERT_TRUE(resumable_hello.has_value());
    EXPECT_TRUE(resumable_hello->resumable);

    const auto session = svc::decode_session(svc::encode_session({5, 9}));
    ASSERT_TRUE(session.has_value());
    EXPECT_EQ(session->epoch, 5u);
    EXPECT_EQ(session->resume_from, 9u);

    const auto resume = svc::decode_resume(svc::encode_resume({"t", 5, 2}));
    ASSERT_TRUE(resume.has_value());
    EXPECT_EQ(resume->tenant, "t");
    EXPECT_EQ(resume->epoch, 5u);
    EXPECT_EQ(resume->last_seq, 2u);

    const auto done = svc::decode_wave_done(svc::encode_wave_done({4, "{}"}));
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->seq, 4u);
    EXPECT_EQ(done->merged_json, "{}");

    EXPECT_FALSE(svc::decode_job("short").has_value());
    EXPECT_FALSE(svc::decode_result("short").has_value());
    EXPECT_FALSE(svc::decode_hello("\xff").has_value());
}

}  // namespace
