// jsk::svc — persistent store tests: reopen recall, crash recovery
// (truncated tails, bit flips, empty shards), eviction and compaction
// determinism. Runs under ASan/UBSan in CI (`ctest -L svc`), which is what
// keeps the mmap-aliasing index honest.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "svc/record.h"
#include "svc/store.h"

namespace {

using namespace jsk;
namespace fs = std::filesystem;

class store_test : public ::testing::Test {
protected:
    void SetUp() override
    {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::path(::testing::TempDir()) /
                (std::string("jsk_svc_") + info->test_suite_name() + "_" +
                 info->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::unique_ptr<svc::store> open(std::size_t shards = 1)
    {
        svc::store_options opt;
        opt.dir = dir_;
        opt.shards = shards;
        return std::make_unique<svc::store>(opt);
    }

    [[nodiscard]] std::string shard_file(std::uint64_t generation = 0,
                                         std::size_t shard = 0) const
    {
        return (fs::path(dir_) / ("gen-" + std::to_string(generation) + "-shard-" +
                                  std::to_string(shard) + ".jsk"))
            .string();
    }

    static std::string read_file(const std::string& path)
    {
        std::ifstream in(path, std::ios::binary);
        return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
    }

    static void write_file(const std::string& path, const std::string& bytes)
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }

    std::string dir_;
};

TEST_F(store_test, persists_and_recalls_across_reopen)
{
    {
        auto s = open(4);
        EXPECT_TRUE(s->put("alpha", "one"));
        EXPECT_TRUE(s->put("beta", "two"));
        EXPECT_TRUE(s->put("gamma", "three"));
        EXPECT_EQ(s->stats().entries, 3u);
        EXPECT_EQ(s->stats().appended_records, 3u);
        ASSERT_TRUE(s->get("beta").has_value());
        EXPECT_EQ(*s->get("beta"), "two");
    }
    auto s = open(4);
    EXPECT_EQ(s->stats().entries, 3u);
    EXPECT_EQ(s->stats().loaded_records, 3u);
    EXPECT_EQ(s->stats().truncated_bytes, 0u);
    const auto alpha = s->get("alpha");
    ASSERT_TRUE(alpha.has_value());
    EXPECT_EQ(*alpha, "one");
    const auto gamma = s->get("gamma");
    ASSERT_TRUE(gamma.has_value());
    EXPECT_EQ(*gamma, "three");
    EXPECT_FALSE(s->get("delta").has_value());
    EXPECT_EQ(s->stats().recalls, 2u);
}

TEST_F(store_test, put_is_first_insert_wins)
{
    auto s = open();
    EXPECT_TRUE(s->put("k", "original"));
    EXPECT_FALSE(s->put("k", "usurper"));
    EXPECT_EQ(s->stats().appended_records, 1u);
    EXPECT_EQ(s->stats().entries, 1u);
    EXPECT_EQ(*s->get("k"), "original");
}

TEST_F(store_test, truncated_tail_loads_as_valid_prefix_and_heals_the_file)
{
    {
        auto s = open();
        s->put("a", "1");
        s->put("b", "2");
        s->put("c", "3");
    }
    // Simulate a crash mid-append: a torn partial record at the tail.
    const std::string intact = read_file(shard_file());
    const std::string torn("\x05\x00\x00\x00torn", 8);  // half a record
    write_file(shard_file(), intact + torn);
    {
        auto s = open();
        EXPECT_EQ(s->stats().entries, 3u);
        EXPECT_EQ(s->stats().loaded_records, 3u);
        EXPECT_EQ(s->stats().truncated_bytes, 8u);
        EXPECT_EQ(s->stats().dropped_records, 0u);
        EXPECT_EQ(*s->get("c"), "3");
    }
    // The scan truncated the file on disk, so the next open is clean...
    EXPECT_EQ(read_file(shard_file()), intact);
    auto s = open();
    EXPECT_EQ(s->stats().truncated_bytes, 0u);
    EXPECT_EQ(s->stats().entries, 3u);
    // ...and the healed store still accepts appends after the cut.
    EXPECT_TRUE(s->put("d", "4"));
    EXPECT_EQ(*s->get("d"), "4");
}

TEST_F(store_test, bad_crc_mid_file_keeps_the_prefix_drops_the_rest)
{
    std::string rec_a;
    std::string rec_b;
    std::string rec_c;
    svc::append_record(rec_a, "a", "1");
    svc::append_record(rec_b, "b", "2");
    svc::append_record(rec_c, "c", "3");
    {
        auto s = open();
        s->put("a", "1");
        s->put("b", "2");
        s->put("c", "3");
    }
    // Flip one bit inside record b's value byte. Everything from b on is
    // untrusted: a lying length could mis-frame c, so the loader cuts there.
    std::string bytes = read_file(shard_file());
    ASSERT_EQ(bytes.size(), rec_a.size() + rec_b.size() + rec_c.size());
    const std::size_t value_byte = rec_a.size() + 8 + 1;  // lengths + key "b"
    bytes[value_byte] = static_cast<char>(bytes[value_byte] ^ 0x01);
    write_file(shard_file(), bytes);

    auto s = open();
    EXPECT_EQ(s->stats().entries, 1u);
    EXPECT_EQ(s->stats().loaded_records, 1u);
    EXPECT_EQ(s->stats().dropped_records, 1u);
    EXPECT_EQ(s->stats().truncated_bytes, rec_b.size() + rec_c.size());
    EXPECT_EQ(*s->get("a"), "1");
    EXPECT_FALSE(s->get("b").has_value());
    EXPECT_FALSE(s->get("c").has_value());
    // The surviving prefix is a correct partial cache: dropped outcomes are
    // recomputable, so a re-put must append cleanly.
    EXPECT_TRUE(s->put("b", "2"));
    EXPECT_EQ(*s->get("b"), "2");
}

TEST_F(store_test, empty_and_missing_shards_load_as_empty_caches)
{
    {
        auto s = open(2);  // no puts: CURRENT exists, no shard files
    }
    write_file(shard_file(0, 0), "");  // zero-length shard file
    auto s = open(2);
    EXPECT_EQ(s->stats().entries, 0u);
    EXPECT_EQ(s->stats().loaded_records, 0u);
    EXPECT_EQ(s->stats().truncated_bytes, 0u);
    EXPECT_FALSE(s->get("anything").has_value());
    EXPECT_TRUE(s->put("k", "v"));
}

TEST_F(store_test, erase_is_in_memory_until_compact_persists_it)
{
    {
        auto s = open();
        s->put("keep", "1");
        s->put("doomed", "2");
        s->erase("doomed");
        EXPECT_EQ(s->stats().entries, 1u);
        EXPECT_FALSE(s->get("doomed").has_value());
    }
    {
        // Reopen without compacting: the record is still on disk (and it is
        // still a true outcome), so it resurrects — documented behaviour.
        auto s = open();
        EXPECT_TRUE(s->get("doomed").has_value());
        s->erase("doomed");
        s->compact();
        EXPECT_EQ(s->stats().generation, 1u);
        EXPECT_EQ(s->stats().compactions, 1u);
        EXPECT_FALSE(s->get("doomed").has_value());
        EXPECT_EQ(*s->get("keep"), "1");
    }
    auto s = open();
    EXPECT_EQ(s->stats().generation, 1u);
    EXPECT_EQ(s->stats().entries, 1u);
    EXPECT_FALSE(s->get("doomed").has_value());
    EXPECT_FALSE(fs::exists(shard_file(0, 0)));  // old generation deleted
}

TEST_F(store_test, evict_if_selects_by_key)
{
    auto s = open();
    s->put("keep-1", "a");
    s->put("drop-1", "b");
    s->put("drop-2", "c");
    const std::size_t evicted =
        s->evict_if([](const std::string& key) { return key.rfind("drop-", 0) == 0; });
    EXPECT_EQ(evicted, 2u);
    EXPECT_EQ(s->stats().entries, 1u);
    EXPECT_TRUE(s->contains("keep-1"));
}

TEST_F(store_test, compacted_bytes_are_a_pure_function_of_the_contents)
{
    const std::vector<std::pair<std::string, std::string>> entries = {
        {"cherry", "3"}, {"apple", "1"}, {"banana", "2"}, {"date", "4"}};
    const std::string other = dir_ + "_mirror";
    fs::remove_all(other);
    {
        auto s = open(2);
        for (const auto& [k, v] : entries) s->put(k, v);
        s->compact();
    }
    {
        svc::store_options opt;
        opt.dir = other;
        opt.shards = 2;
        svc::store s(opt);
        // Same contents, reversed insertion order.
        for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
            s.put(it->first, it->second);
        }
        s.compact();
    }
    for (std::size_t shard = 0; shard < 2; ++shard) {
        const std::string mine = read_file(shard_file(1, shard));
        const std::string theirs = read_file(
            (fs::path(other) / ("gen-1-shard-" + std::to_string(shard) + ".jsk"))
                .string());
        EXPECT_EQ(mine, theirs) << "shard " << shard;
    }
    fs::remove_all(other);
}

TEST_F(store_test, for_each_visits_in_canonical_key_order)
{
    auto s = open(4);
    s->put("zeta", "z");
    s->put("alpha", "a");
    s->put("mu", "m");
    std::vector<std::string> seen;
    s->for_each([&](const std::string& key, std::string_view) { seen.push_back(key); });
    const std::vector<std::string> expected = {"alpha", "mu", "zeta"};
    EXPECT_EQ(seen, expected);
}

TEST_F(store_test, appends_after_reopen_coexist_with_mapped_records)
{
    {
        auto s = open();
        s->put("old", "mapped");
    }
    auto s = open();
    EXPECT_TRUE(s->put("new", "session"));
    EXPECT_EQ(*s->get("old"), "mapped");
    EXPECT_EQ(*s->get("new"), "session");
    EXPECT_EQ(s->stats().entries, 2u);
    // And both survive another reopen.
    s = open();
    EXPECT_EQ(s->stats().loaded_records, 2u);
    EXPECT_EQ(*s->get("new"), "session");
}

}  // namespace
