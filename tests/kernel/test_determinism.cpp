// Property tests for the kernel's core security guarantee: under JSKernel,
// every user-observable measurement is a pure function of the program —
// independent of physical costs (the secret) and of browser profile.
//
// These are the invariants behind every row of Table I: if the observable
// timeline cannot depend on the secret, no implicit clock can measure it.
#include <gtest/gtest.h>

#include "kernel/kernel.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;

/// Run "measure an async op with a setTimeout implicit clock" and return the
/// attacker's observation: (tick count during the op, reported duration).
struct observation {
    int ticks = 0;
    double reported = 0.0;
    bool operator==(const observation&) const = default;
};

observation measure_with_timeout_clock(rt::browser& b, sim::time_ns secret_cost)
{
    // Attack state lives on the heap: the timer closures outlive this frame.
    struct state {
        observation out;
        bool done = false;
        double t0 = 0.0;
    };
    auto st = std::make_shared<state>();
    b.net().serve(rt::resource{"https://x/secret", "https://x", rt::resource_kind::data, 1000,
                               0, 0, secret_cost});
    b.main().post_task(0, [&b, st] {
        auto& apis = b.main().apis();
        st->t0 = apis.performance_now();
        // The implicit clock: a self-rescheduling timer counting ticks.
        auto tick = std::make_shared<std::function<void()>>();
        *tick = [&b, st, tick] {
            if (st->done) return;
            ++st->out.ticks;
            b.main().apis().set_timeout([tick] { (*tick)(); }, 0);
        };
        apis.set_timeout([tick] { (*tick)(); }, 0);
        apis.fetch(
            "https://x/secret", {},
            [&b, st](const rt::fetch_result&) {
                st->done = true;
                st->out.reported = b.main().apis().performance_now() - st->t0;
            },
            nullptr);
    });
    b.run();
    return st->out;
}

TEST(determinism, timeout_clock_observation_is_secret_independent)
{
    observation fast, slow;
    {
        rt::browser b(rt::chrome_profile());
        auto k = kernel::boot(b);
        fast = measure_with_timeout_clock(b, 1 * sim::ms);
    }
    {
        rt::browser b(rt::chrome_profile());
        auto k = kernel::boot(b);
        slow = measure_with_timeout_clock(b, 800 * sim::ms);
    }
    EXPECT_EQ(fast, slow);  // identical ticks AND identical reported time
    EXPECT_GT(fast.ticks, 0);
}

TEST(determinism, without_kernel_the_same_clock_leaks)
{
    observation fast, slow;
    {
        rt::browser b(rt::chrome_profile());
        fast = measure_with_timeout_clock(b, 1 * sim::ms);
    }
    {
        rt::browser b(rt::chrome_profile());
        slow = measure_with_timeout_clock(b, 800 * sim::ms);
    }
    EXPECT_GT(slow.ticks, fast.ticks + 10);  // the leak the kernel removes
    EXPECT_GT(slow.reported, fast.reported);
}

TEST(determinism, worker_message_count_is_secret_independent)
{
    // Listing 1: a worker floods postMessage while the main thread waits for
    // a secret-duration operation; the adversary counts deliveries.
    auto run = [](sim::time_ns secret_cost) {
        rt::browser b(rt::chrome_profile());
        auto k = kernel::boot(b);
        b.net().serve(rt::resource{"https://x/op", "https://x", rt::resource_kind::data, 100,
                                   0, 0, secret_cost});
        b.register_worker_script("flood.js", [](rt::context& ctx) {
            // The chunked i++/postMessage loop of Listing 1 (lines 2-5).
            ctx.apis().set_interval(
                [&ctx] { ctx.apis().post_message_to_parent(rt::js_value{1}, {}); },
                1 * sim::ms);
        });
        int during = -1;
        b.main().post_task(0, [&] {
            auto w = b.main().apis().create_worker("flood.js");
            auto count = std::make_shared<int>(0);
            w->set_onmessage([count](const rt::message_event&) { ++*count; });
            b.main().apis().fetch(
                "https://x/op", {},
                [&during, count, w](const rt::fetch_result&) {
                    during = *count;
                    w->terminate();
                },
                nullptr);
        });
        b.run_until(5 * sim::sec);
        return during;
    };
    const int fast = run(1 * sim::ms);
    const int slow = run(500 * sim::ms);
    EXPECT_EQ(fast, slow);
}

TEST(determinism, clock_edge_iteration_count_is_secret_independent)
{
    // Clock-edge attack (§IV-A4): count performance.now() polls until the
    // secret's completion callback runs.
    auto run = [](sim::time_ns secret_cost) {
        rt::browser b(rt::chrome_profile());
        auto k = kernel::boot(b);
        b.net().serve(rt::resource{"https://x/s", "https://x", rt::resource_kind::data, 100,
                                   0, 0, secret_cost});
        struct state {
            long polls = 0;
            bool done = false;
        };
        auto st = std::make_shared<state>();
        b.main().post_task(0, [&b, st] {
            auto& apis = b.main().apis();
            apis.fetch("https://x/s", {}, [st](const rt::fetch_result&) { st->done = true; },
                       nullptr);
            auto spin = std::make_shared<std::function<void()>>();
            *spin = [&b, st, spin] {
                if (st->done) return;
                for (int i = 0; i < 64; ++i) {
                    (void)b.main().apis().performance_now();
                    ++st->polls;
                }
                b.main().apis().set_timeout([spin] { (*spin)(); }, 0);
            };
            (*spin)();
        });
        b.run_until(10 * sim::sec);
        return st->polls;
    };
    EXPECT_EQ(run(1 * sim::ms), run(700 * sim::ms));
}

TEST(determinism, observation_is_identical_across_browser_profiles)
{
    // The same program under Chrome/Firefox/Edge kernels observes the same
    // kernel timeline (the extension behaves identically on all three).
    observation chrome, firefox, edge;
    {
        rt::browser b(rt::chrome_profile());
        auto k = kernel::boot(b);
        chrome = measure_with_timeout_clock(b, 50 * sim::ms);
    }
    {
        rt::browser b(rt::firefox_profile());
        auto k = kernel::boot(b);
        firefox = measure_with_timeout_clock(b, 50 * sim::ms);
    }
    {
        rt::browser b(rt::edge_profile());
        auto k = kernel::boot(b);
        edge = measure_with_timeout_clock(b, 50 * sim::ms);
    }
    EXPECT_EQ(chrome, firefox);
    EXPECT_EQ(chrome, edge);
}

TEST(determinism, fuzzy_ablation_is_not_deterministic_across_seeds)
{
    auto run = [](std::uint64_t seed) {
        rt::browser b(rt::chrome_profile());
        kernel_options opts;
        opts.fuzzy_prediction = true;
        opts.fuzz_seed = seed;
        auto k = kernel::boot(b, opts);
        return measure_with_timeout_clock(b, 50 * sim::ms);
    };
    const observation a = run(1);
    const observation b2 = run(1);
    const observation c = run(99);
    EXPECT_EQ(a, b2);                       // same seed reproduces
    EXPECT_NE(a.reported, c.reported);      // different seed, different timeline
}

}  // namespace
