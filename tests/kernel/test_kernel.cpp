// Integration tests for the installed kernel: API interposition, kernel
// clocks, worker stubs, the termination protocol, and CVE policies.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "runtime/vuln.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;

struct kernel_fixture : ::testing::Test {
    rt::browser b{rt::chrome_profile()};
    rt::vuln_registry vulns{b.bus()};
    std::unique_ptr<kernel> k = kernel::boot(b);

    bool triggered(const std::string& id) const
    {
        const auto* m = vulns.find(id);
        return m != nullptr && m->triggered();
    }
};

TEST_F(kernel_fixture, performance_now_displays_kernel_time_not_physical)
{
    double first = -1.0;
    double second = -1.0;
    b.main().post_task(0, [&] {
        first = b.main().apis().performance_now();
        b.main().consume(500 * sim::ms);  // half a second of real compute
        second = b.main().apis().performance_now();
    });
    b.run();
    // Physical time advanced 500 ms; the kernel clock only by one tick.
    EXPECT_NEAR(second - first, k->options().tick_ms, 1e-9);
}

TEST_F(kernel_fixture, timers_fire_through_the_kernel_in_predicted_order)
{
    std::vector<int> order;
    b.main().post_task(0, [&] {
        b.main().apis().set_timeout([&] { order.push_back(2); }, 20 * sim::ms);
        b.main().apis().set_timeout([&] { order.push_back(1); }, 5 * sim::ms);
    });
    b.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_GE(k->events_dispatched(), 2u);
}

TEST_F(kernel_fixture, clear_timeout_through_kernel_cancels)
{
    bool ran = false;
    b.main().post_task(0, [&] {
        const auto id = b.main().apis().set_timeout([&] { ran = true; }, 5 * sim::ms);
        b.main().apis().clear_timeout(id);
    });
    b.run();
    EXPECT_FALSE(ran);
}

TEST_F(kernel_fixture, raf_timestamps_are_kernel_predictions)
{
    std::vector<double> stamps;
    std::function<void(double)> frame = [&](double ts) {
        stamps.push_back(ts);
        if (stamps.size() < 4) b.main().apis().request_animation_frame(frame);
    };
    b.main().post_task(0, [&] { b.main().apis().request_animation_frame(frame); });
    b.run();
    ASSERT_EQ(stamps.size(), 4u);
    const double interval = k->options().intervals.animation_frame;
    for (std::size_t i = 1; i < stamps.size(); ++i) {
        EXPECT_NEAR(stamps[i] - stamps[i - 1], interval, 0.5);
    }
}

TEST_F(kernel_fixture, interval_ticks_are_counter_predicted)
{
    int count = 0;
    std::int64_t id = 0;
    b.main().post_task(0, [&] {
        id = b.main().apis().set_interval(
            [&] {
                if (++count == 3) b.main().apis().clear_interval(id);
            },
            5 * sim::ms);
    });
    b.run();
    EXPECT_EQ(count, 3);
}

TEST_F(kernel_fixture, worker_round_trip_through_kernel_stub)
{
    b.register_worker_script("echo.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });
    std::string got;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("echo.js");
        w->set_onmessage([&](const rt::message_event& e) { got = e.data.as_string(); });
        w->post_message(rt::js_value{"ping"});
    });
    b.run();
    EXPECT_EQ(got, "ping");
    // A child kernel was installed in the worker.
    ASSERT_EQ(k->threads().threads().size(), 1u);
    EXPECT_NE(k->threads().threads()[0]->child_kernel, nullptr);
    EXPECT_EQ(k->threads().threads()[0]->status, "ready");  // loaded, never terminated
}

TEST_F(kernel_fixture, user_never_sees_kernel_overlay_fields)
{
    b.register_worker_script("echo.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            // The overlay must be stripped: plain payload, no __jsk field.
            EXPECT_TRUE(e.data.is_string());
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });
    bool checked = false;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("echo.js");
        w->set_onmessage([&](const rt::message_event& e) {
            EXPECT_TRUE(e.data.is_string());
            checked = true;
        });
        w->post_message(rt::js_value{"payload"});
    });
    b.run();
    EXPECT_TRUE(checked);
}

TEST_F(kernel_fixture, stub_terminate_is_immediate_for_user_but_deferred_natively)
{
    b.register_worker_script("idle.js", [](rt::context&) {});
    rt::worker_ptr w;
    b.main().post_task(0, [&] {
        w = b.main().apis().create_worker("idle.js");
        b.main().apis().set_timeout(
            [&] {
                w->terminate();
                EXPECT_FALSE(w->alive());  // user-level: immediate
            },
            10 * sim::ms);
    });
    b.run();
    // After the handshake the native worker is gone exactly once.
    ASSERT_EQ(k->threads().threads().size(), 1u);
    EXPECT_EQ(k->threads().threads()[0]->status, "closed");
    EXPECT_TRUE(k->threads().threads()[0]->native_terminated);
}

TEST_F(kernel_fixture, messages_after_user_terminate_are_dropped)
{
    int received = 0;
    b.register_worker_script("chatty.js", [](rt::context& ctx) {
        // Send one message per 5ms, forever.
        ctx.apis().set_interval(
            [&ctx] { ctx.apis().post_message_to_parent(rt::js_value{1}, {}); },
            5 * sim::ms);
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("chatty.js");
        w->set_onmessage([&](const rt::message_event&) { ++received; });
        b.main().apis().set_timeout([w] { w->terminate(); }, 50 * sim::ms);
    });
    b.run();
    const int at_terminate = received;
    EXPECT_GT(at_terminate, 0);
    EXPECT_LT(at_terminate, 20);  // flood stopped shortly after terminate
}

// --- CVE defense: run the §IV-B exploits with the kernel installed; none of
// --- the trigger conditions may become observable.

TEST_F(kernel_fixture, defends_cve_2018_5092)
{
    b.net().serve(rt::resource{"https://attacker.example/f0", "https://attacker.example",
                               rt::resource_kind::data, 100'000, 0, 0, 0});
    b.register_worker_script("fetcher.js", [](rt::context& ctx) {
        ctx.apis().fetch("https://attacker.example/f0", {}, nullptr, nullptr);
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("fetcher.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 5 * sim::ms);
        b.main().apis().set_timeout([&] { b.main().apis().reload(); }, 10 * sim::ms);
    });
    b.run();
    EXPECT_FALSE(triggered("CVE-2018-5092"));
}

TEST_F(kernel_fixture, defends_cve_2017_7843)
{
    b.set_private_browsing(true);
    b.main().post_task(0, [&] {
        const bool ok = b.main().apis().indexeddb_put("tracker", "id", rt::js_value{"fp"});
        EXPECT_FALSE(ok);  // kernel denies private-mode access
    });
    b.run();
    b.end_private_session();
    EXPECT_FALSE(triggered("CVE-2017-7843"));
}

TEST_F(kernel_fixture, defends_cve_2015_7215_and_2011_1190)
{
    b.set_page_origin("https://attacker.example");
    b.net().serve(rt::resource{"https://victim.example/lib.js", "https://victim.example",
                               rt::resource_kind::script, 2'000, 0, 0, 0});
    b.register_worker_script("prober.js", [](rt::context& ctx) {
        ctx.apis().import_scripts({"https://victim.example/secret-redirect"});
        ctx.apis().import_scripts({"https://victim.example/lib.js"});
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("prober.js"); });
    b.run();
    EXPECT_FALSE(triggered("CVE-2015-7215"));
    EXPECT_FALSE(triggered("CVE-2011-1190"));
}

TEST_F(kernel_fixture, defends_cve_2014_3194)
{
    b.register_worker_script("sink.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([](const rt::message_event&) {});
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("sink.js");
        b.main().apis().set_timeout(
            [&, w] {
                w->post_message(rt::js_value{1});
                w->terminate();
            },
            5 * sim::ms);
    });
    b.run();
    EXPECT_FALSE(triggered("CVE-2014-3194"));
}

TEST_F(kernel_fixture, defends_cve_2014_1719)
{
    b.register_worker_script("cruncher.js", [](rt::context& ctx) {
        ctx.consume(200 * sim::ms);
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("cruncher.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 50 * sim::ms);
    });
    b.run();
    EXPECT_FALSE(triggered("CVE-2014-1719"));
}

TEST_F(kernel_fixture, defends_cve_2014_1488)
{
    b.register_worker_script("transfer.js", [](rt::context& ctx) {
        auto buf = std::make_shared<rt::array_buffer>();
        buf->data.assign(64, 1);
        ctx.apis().post_message_to_parent(rt::js_value{buf}, {buf});
        ctx.apis().close_self();
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("transfer.js"); });
    b.run();
    EXPECT_FALSE(triggered("CVE-2014-1488"));
}

TEST_F(kernel_fixture, defends_cve_2014_1487)
{
    std::string error;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("https://victim.example/missing.js");
        w->set_onerror([&](const std::string& msg) { error = msg; });
    });
    b.run();
    EXPECT_FALSE(triggered("CVE-2014-1487"));
    EXPECT_EQ(error, "Script error.");  // sanitized, still delivered
}

TEST_F(kernel_fixture, defends_cve_2013_6646)
{
    b.register_worker_script("chatty.js", [](rt::context& ctx) {
        for (int i = 0; i < 20; ++i) ctx.apis().post_message_to_parent(rt::js_value{i}, {});
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("chatty.js");
        w->set_onmessage([&](const rt::message_event&) { b.main().apis().reload(); });
    });
    b.run();
    EXPECT_FALSE(triggered("CVE-2013-6646"));
}

TEST_F(kernel_fixture, defends_cve_2013_5602)
{
    b.register_worker_script("sink.js", [](rt::context&) {});
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("sink.js");
        w->set_onmessage(nullptr);  // rejected by the kernel trap
    });
    b.run();
    EXPECT_FALSE(triggered("CVE-2013-5602"));
}

TEST_F(kernel_fixture, defends_cve_2013_1714)
{
    b.set_page_origin("https://attacker.example");
    b.net().serve(rt::resource{"https://victim.example/api", "https://victim.example",
                               rt::resource_kind::data, 100, 0, 0, 0});
    rt::fetch_result got;
    b.register_worker_script("sop.js", [&](rt::context& ctx) {
        ctx.apis().xhr("https://victim.example/api",
                       [&](const rt::fetch_result& r) { got = r; });
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("sop.js"); });
    b.run();
    EXPECT_FALSE(triggered("CVE-2013-1714"));
    EXPECT_FALSE(got.ok);  // blocked by the kernel origin check
}

TEST_F(kernel_fixture, defends_cve_2010_4576)
{
    b.register_worker_script("quit.js", [](rt::context& ctx) { ctx.apis().close_self(); });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("quit.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 50 * sim::ms);
    });
    b.run();
    EXPECT_FALSE(triggered("CVE-2010-4576"));
}

TEST_F(kernel_fixture, all_cves_silent_after_full_exploit_suite)
{
    // Aggregate check: none of the twelve monitors fired in any prior step
    // of this test (fresh fixture), and the registry agrees.
    EXPECT_TRUE(vulns.triggered_ids().empty());
}

}  // namespace
