// Detailed tests for the kernel's thread manager (§III-E): status machine,
// overlay channel, termination handshake, flush barrier.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "runtime/events.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;

struct tm_fixture : ::testing::Test {
    rt::browser b{rt::chrome_profile()};
    std::unique_ptr<kernel> k = kernel::boot(b);

    kthread& only_thread()
    {
        auto& threads = k->threads().threads();
        EXPECT_EQ(threads.size(), 1u);
        return *threads.front();
    }
};

TEST_F(tm_fixture, kthread_has_paper_fields)
{
    b.register_worker_script("idle.js", [](rt::context&) {});
    b.main().post_task(0, [&] { b.main().apis().create_worker("idle.js"); });
    b.run();
    kthread& kt = only_thread();
    EXPECT_EQ(kt.status, "ready");  // started -> ready after import
    EXPECT_EQ(kt.src, "idle.js");
    EXPECT_NE(kt.native, nullptr);       // the kernelWorker field
    EXPECT_NE(kt.child_kernel, nullptr);
    EXPECT_GT(kt.id, 0u);
}

TEST_F(tm_fixture, child_kernel_has_its_own_queue_and_clock)
{
    b.register_worker_script("worker.js", [](rt::context& ctx) {
        // Burn a lot of worker time through kernel APIs.
        for (int i = 0; i < 100; ++i) (void)ctx.apis().performance_now();
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("worker.js"); });
    b.run();
    kernel* child = only_thread().child_kernel;
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(child->kind(), kernel::role::worker);
    EXPECT_EQ(child->parent(), k.get());
    // The worker's API calls ticked the *worker* clock, not the main one.
    EXPECT_GT(child->clock().ticks(), 99u);
    EXPECT_LT(k->clock().ticks(), 50u);
}

TEST_F(tm_fixture, overlay_wraps_all_traffic_with_type_field)
{
    // Observe raw channel traffic at the runtime level: everything the
    // kernel sends must be a wrapped object with the "__jsk" type field.
    int raw_messages = 0;
    b.register_worker_script("echo.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });
    b.bus().subscribe([&](const rt::rt_event& e) {
        if (e.kind == rt::rt_event_kind::message_posted) ++raw_messages;
    });
    std::string got;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("echo.js");
        w->set_onmessage([&](const rt::message_event& e) { got = e.data.as_string(); });
        w->post_message(rt::js_value{"hi"});
    });
    b.run();
    EXPECT_EQ(got, "hi");
    // main->child user message + child->parent echo (plus no sys traffic for
    // this scenario beyond those two).
    EXPECT_GE(raw_messages, 2);
}

TEST_F(tm_fixture, terminate_walks_closing_then_closed)
{
    b.register_worker_script("idle.js", [](rt::context&) {});
    std::vector<std::string> observed;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("idle.js");
        b.main().apis().set_timeout(
            [&, w] {
                w->terminate();
                observed.push_back(only_thread().status);  // right after the call
            },
            10 * sim::ms);
    });
    b.run();
    ASSERT_EQ(observed.size(), 1u);
    EXPECT_EQ(observed[0], "closing");          // handshake in progress
    EXPECT_EQ(only_thread().status, "closed");  // after ready-to-die
    EXPECT_TRUE(only_thread().native_terminated);
}

TEST_F(tm_fixture, terminate_defers_native_kill_until_fetch_completes)
{
    b.net().serve(rt::resource{"https://x/slow", "https://x", rt::resource_kind::data,
                               500'000, 0, 0, 0});
    int freed_events = 0;
    b.bus().subscribe([&](const rt::rt_event& e) {
        if (e.kind == rt::rt_event_kind::fetch_freed) ++freed_events;
    });
    b.register_worker_script("fetcher.js", [](rt::context& ctx) {
        ctx.apis().fetch("https://x/slow", {}, nullptr, nullptr);
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("fetcher.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 5 * sim::ms);
    });
    b.run();
    EXPECT_EQ(freed_events, 0);  // the native thread outlived its fetch
    EXPECT_TRUE(only_thread().native_terminated);
}

TEST_F(tm_fixture, double_terminate_is_idempotent)
{
    b.register_worker_script("idle.js", [](rt::context&) {});
    int terminated_events = 0;
    b.bus().subscribe([&](const rt::rt_event& e) {
        if (e.kind == rt::rt_event_kind::worker_terminated) ++terminated_events;
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("idle.js");
        b.main().apis().set_timeout(
            [w] {
                w->terminate();
                w->terminate();
                w->terminate();
            },
            5 * sim::ms);
    });
    b.run();
    EXPECT_EQ(terminated_events, 1);
}

TEST_F(tm_fixture, flush_barrier_waits_for_all_children)
{
    for (int i = 0; i < 3; ++i) {
        b.register_worker_script("w" + std::to_string(i) + ".js", [](rt::context&) {});
    }
    bool flushed = false;
    b.main().post_task(0, [&] {
        for (int i = 0; i < 3; ++i) {
            b.main().apis().create_worker("w" + std::to_string(i) + ".js");
        }
        b.main().apis().set_timeout(
            [&] { k->threads().flush_all_then([&] { flushed = true; }); }, 10 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(flushed);
}

TEST_F(tm_fixture, flush_with_no_threads_completes_immediately)
{
    bool flushed = false;
    b.main().post_task(0, [&] { k->threads().flush_all_then([&] { flushed = true; }); });
    b.run();
    EXPECT_TRUE(flushed);
}

TEST_F(tm_fixture, stub_reports_native_worker_id)
{
    b.register_worker_script("idle.js", [](rt::context&) {});
    rt::worker_ptr stub;
    b.main().post_task(0, [&] { stub = b.main().apis().create_worker("idle.js"); });
    b.run();
    EXPECT_GT(stub->id(), 0u);
    EXPECT_TRUE(stub->alive());
}

TEST_F(tm_fixture, onmessage_base_is_the_main_clock_at_creation)
{
    b.register_worker_script("idle.js", [](rt::context&) {});
    b.main().post_task(0, [&] {
        // Advance the kernel clock before creating the worker.
        for (int i = 0; i < 100; ++i) (void)b.main().apis().performance_now();
        b.main().apis().create_worker("idle.js");
    });
    b.run();
    EXPECT_GT(only_thread().onmessage_base, 4.0);  // 100 ticks * 0.05 ms
}

}  // namespace
