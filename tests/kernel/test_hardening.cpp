// Regression tests for the error-path hardening: simulator exception safety,
// dispatcher callback containment, the pending-head watchdog, policy
// quarantine, and fetch retry-with-backoff.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "faults/injector.h"
#include "faults/plan.h"
#include "kernel/kernel.h"
#include "kernel/policy_spec.h"
#include "runtime/browser.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;
namespace faults = jsk::faults;

// --- simulator exception safety ---------------------------------------------

TEST(hardening_sim, simulation_stays_usable_after_a_throwing_task)
{
    // Regression: execute() used to leave the running-task record engaged
    // when a task threw, so every later run() call hit the reentrancy guard.
    rt::browser b(rt::chrome_profile());
    b.main().post_task(0, [] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(b.run(), std::runtime_error);

    bool ran = false;
    b.main().post_task(sim::ms, [&] { ran = true; });
    EXPECT_NO_THROW(b.run());
    EXPECT_TRUE(ran);
}

TEST(hardening_sim, throwing_task_still_charges_its_thread)
{
    rt::browser b(rt::chrome_profile());
    b.main().post_task(0, [&] {
        b.main().consume(5 * sim::ms);
        throw std::runtime_error("boom after work");
    });
    EXPECT_THROW(b.run(), std::runtime_error);
    // The 5 ms of consumed budget must survive the unwind.
    EXPECT_GE(b.sim().busy_until(b.main().thread()), 5 * sim::ms);
}

// --- runtime ledger -----------------------------------------------------------

TEST(hardening_runtime, post_to_dead_worker_does_not_leak_inflight_counters)
{
    // Regression: post_to_child bumped the in-flight ledger before the
    // dead-child guard, so messages to terminated workers leaked counts.
    rt::browser b(rt::chrome_profile());
    b.register_worker_script("w.js", [](rt::context&) {});
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("w.js");
        w->terminate();
        w->post_message(rt::js_value{"into the void"}, {});
    });
    b.run();
    EXPECT_EQ(b.messages_in_flight(), 0);
}

// --- dispatcher containment ---------------------------------------------------

TEST(hardening_dispatcher, throwing_event_callback_does_not_stall_dispatch)
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    bool later_fired = false;
    b.main().post_task(0, [&] {
        b.main().apis().set_timeout([] { throw std::runtime_error("cb boom"); },
                                    5 * sim::ms);
        b.main().apis().set_timeout([&] { later_fired = true; }, 10 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(later_fired);
    EXPECT_EQ(k->disp().callback_exceptions(), 1u);
}

// --- watchdog ---------------------------------------------------------------

TEST(hardening_watchdog, cancels_a_head_stranded_by_dropped_messages)
{
    // Saturated channel drops eat the kernel's own coordination messages, so
    // a registered event's confirmation never arrives and the predicted-order
    // head stays pending forever. The watchdog must journal a cancellation
    // and let the world drain instead of hanging.
    rt::browser b(rt::chrome_profile());
    faults::plan p;
    p.msg_drop_bp = 10'000;
    faults::injector inj{p};
    b.set_fault_injector(&inj);

    kernel_options ko;
    ko.watchdog_budget_ms = 50.0;
    auto k = kernel::boot(b, ko);

    b.register_worker_script("echo.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("echo.js");
        w->post_message(rt::js_value{"doomed"}, {});
    });
    b.run_until(60 * sim::sec, 200'000);

    EXPECT_LT(b.sim().tasks_executed(), 200'000u) << "world did not drain";
    EXPECT_GT(k->disp().watchdog_fires(), 0u);
    EXPECT_NE(k->dispatch_journal().to_json().find("watchdog_cancel"),
              std::string::npos);
}

TEST(hardening_watchdog, disabled_by_default)
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    bool ran = false;
    b.main().post_task(0, [&] {
        b.main().apis().set_timeout([&] { ran = true; }, 5 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(k->disp().watchdog_fires(), 0u);
}

// --- policy quarantine --------------------------------------------------------

class throwing_policy final : public policy {
public:
    [[nodiscard]] const char* name() const override { return "throwing-policy"; }
    bool on_fetch(kernel&, const std::string&) override
    {
        throw std::runtime_error("policy boom");
    }
};

TEST(hardening_quarantine, throwing_policy_is_quarantined_not_fatal)
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    k->add_policy(std::make_unique<throwing_policy>());
    b.net().serve(rt::resource{"https://site/a", "https://site",
                               rt::resource_kind::data, 128, 0, 0, 0});
    int successes = 0;
    b.main().post_task(0, [&] {
        b.main().apis().fetch("https://site/a", {},
                              [&](const rt::fetch_result& r) { successes += r.ok; },
                              nullptr);
        // A second fetch must skip the quarantined policy without re-throwing.
        b.main().apis().fetch("https://site/a", {},
                              [&](const rt::fetch_result& r) { successes += r.ok; },
                              nullptr);
    });
    b.run();
    EXPECT_EQ(successes, 2);  // pass-through mediation: fetches still complete
    EXPECT_EQ(k->policies_quarantined(), 1u);
}

TEST(hardening_quarantine, cve_monitors_stay_armed_after_quarantine)
{
    // Graceful degradation must not take the working policies down with the
    // broken one: cross-origin XHR from a worker (CVE-2013-1714) is still
    // blocked after an unrelated policy was quarantined.
    rt::browser b(rt::chrome_profile());
    b.set_page_origin("https://site");  // makes the worker's XHR cross-origin
    auto k = kernel::boot(b);
    k->add_policy(std::make_unique<throwing_policy>());
    b.net().serve(rt::resource{"https://site/a", "https://site",
                               rt::resource_kind::data, 128, 0, 0, 0});
    b.net().serve(rt::resource{"https://evil.example/leak", "https://evil.example",
                               rt::resource_kind::data, 64, 0, 0, 0});
    bool xhr_ok = true;
    b.register_worker_script("xhr.js", [&](rt::context& ctx) {
        ctx.apis().xhr("https://evil.example/leak",
                       [&](const rt::fetch_result& r) { xhr_ok = r.ok; });
    });
    b.main().post_task(0, [&] {
        // Trip the quarantine first, then spawn the worker.
        b.main().apis().fetch("https://site/a", {}, nullptr, nullptr);
        b.main().apis().create_worker("xhr.js");
    });
    b.run();
    EXPECT_EQ(k->policies_quarantined(), 1u);
    EXPECT_FALSE(xhr_ok) << "worker-xhr-origin-check stopped enforcing";
}

// --- fetch retry --------------------------------------------------------------

TEST(hardening_retry, saturated_resets_exhaust_attempts_then_fail_once)
{
    rt::browser b(rt::chrome_profile());
    faults::plan p;
    p.fetch_reset_bp = 10'000;
    faults::injector inj{p};
    b.set_fault_injector(&inj);
    auto k = kernel::boot(b);
    k->add_policy(make_policy_fetch_retry(3, 5.0));
    b.net().serve(rt::resource{"https://site/a", "https://site",
                               rt::resource_kind::data, 128, 0, 0, 0});
    int failures = 0;
    rt::fetch_result last;
    b.main().post_task(0, [&] {
        b.main().apis().fetch("https://site/a", {}, nullptr,
                              [&](const rt::fetch_result& r) {
                                  ++failures;
                                  last = r;
                              });
    });
    b.run();
    EXPECT_EQ(failures, 1);  // retries are kernel-internal; one user-visible failure
    EXPECT_EQ(last.kind, rt::fetch_error::reset);
    EXPECT_EQ(k->fetch_retries(), 2u);  // attempts 2 and 3
    EXPECT_EQ(inj.fetch_resets(), 3u);
}

TEST(hardening_retry, retry_policy_loads_from_a_policy_spec)
{
    rt::browser b(rt::chrome_profile());
    faults::plan p;
    p.fetch_reset_bp = 10'000;
    faults::injector inj{p};
    b.set_fault_injector(&inj);
    auto k = kernel::boot(b);
    k->add_policy(load_policy_spec(R"({
      "name": "retry-bundle",
      "rules": [
        {"hook": "fetch_failure", "action": "retry",
         "max_attempts": 2, "backoff_base_ms": 1}
      ]
    })"));
    b.net().serve(rt::resource{"https://site/a", "https://site",
                               rt::resource_kind::data, 128, 0, 0, 0});
    int failures = 0;
    b.main().post_task(0, [&] {
        b.main().apis().fetch("https://site/a", {}, nullptr,
                              [&](const rt::fetch_result&) { ++failures; });
    });
    b.run();
    EXPECT_EQ(failures, 1);
    EXPECT_EQ(k->fetch_retries(), 1u);  // max_attempts=2 allows one retry
}

TEST(hardening_retry, aborts_are_not_retried)
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    k->add_policy(make_policy_fetch_retry(5, 1.0));
    b.net().serve(rt::resource{"https://site/big", "https://site",
                               rt::resource_kind::data, 1'000'000, 0, 0, 0});
    rt::abort_controller ctl;
    int failures = 0;
    rt::fetch_result last;
    b.main().post_task(0, [&] {
        rt::fetch_options opts;
        opts.signal = ctl.signal;
        b.main().apis().fetch("https://site/big", opts, nullptr,
                              [&](const rt::fetch_result& r) {
                                  ++failures;
                                  last = r;
                              });
        b.main().apis().set_timeout([&] { b.main().apis().abort_fetch(ctl.signal); },
                                    1 * sim::ms);
    });
    b.run();
    EXPECT_EQ(failures, 1);
    EXPECT_TRUE(last.aborted);
    EXPECT_EQ(k->fetch_retries(), 0u);
}

}  // namespace
