// Unit tests for the kernel event queue (§III-C1 API: push/pop/top/remove/
// lookup) and the kernel clock (§III-C2).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/event_queue.h"
#include "kernel/kclock.h"

namespace {

using namespace jsk::kernel;

kevent make_event(std::uint64_t id, ktime predicted)
{
    kevent ev;
    ev.id = id;
    ev.predicted_time = predicted;
    return ev;
}

TEST(event_queue, pop_returns_smallest_predicted_time)
{
    event_queue q;
    q.push(make_event(1, 30.0));
    q.push(make_event(2, 10.0));
    q.push(make_event(3, 20.0));
    EXPECT_EQ(q.pop().id, 2u);
    EXPECT_EQ(q.pop().id, 3u);
    EXPECT_EQ(q.pop().id, 1u);
    EXPECT_TRUE(q.empty());
}

TEST(event_queue, top_keeps_the_event)
{
    event_queue q;
    q.push(make_event(7, 5.0));
    ASSERT_NE(q.top(), nullptr);
    EXPECT_EQ(q.top()->id, 7u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(event_queue, equal_predictions_dispatch_in_registration_order)
{
    event_queue q;
    q.push(make_event(10, 1.0));
    q.push(make_event(11, 1.0));
    q.push(make_event(12, 1.0));
    EXPECT_EQ(q.pop().id, 10u);
    EXPECT_EQ(q.pop().id, 11u);
    EXPECT_EQ(q.pop().id, 12u);
}

TEST(event_queue, remove_by_id_regardless_of_predicted_time)
{
    event_queue q;
    q.push(make_event(1, 10.0));
    q.push(make_event(2, 20.0));
    EXPECT_TRUE(q.remove(2));
    EXPECT_FALSE(q.remove(2));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.lookup(2), nullptr);
}

TEST(event_queue, lookup_finds_live_events)
{
    event_queue q;
    q.push(make_event(5, 3.0));
    kevent* ev = q.lookup(5);
    ASSERT_NE(ev, nullptr);
    ev->status = kevent_status::ready;
    EXPECT_EQ(q.top()->status, kevent_status::ready);
}

TEST(event_queue, duplicate_id_throws)
{
    event_queue q;
    q.push(make_event(1, 1.0));
    EXPECT_THROW(q.push(make_event(1, 2.0)), std::invalid_argument);
}

TEST(event_queue, pop_empty_throws)
{
    event_queue q;
    EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(event_queue, cancel_all_marks_everything)
{
    event_queue q;
    q.push(make_event(1, 1.0));
    q.push(make_event(2, 2.0));
    q.cancel_all();
    EXPECT_EQ(q.top()->status, kevent_status::cancelled);
    EXPECT_EQ(q.lookup(2)->status, kevent_status::cancelled);
}

TEST(event_queue, mark_cancelled_keeps_event_queued)
{
    event_queue q;
    q.push(make_event(1, 1.0));
    q.push(make_event(2, 2.0));
    EXPECT_TRUE(q.mark_cancelled(1));
    EXPECT_FALSE(q.mark_cancelled(99));
    EXPECT_EQ(q.size(), 2u);  // stays queued for in-order discard
    EXPECT_EQ(q.top()->id, 1u);
    EXPECT_EQ(q.top()->status, kevent_status::cancelled);
    EXPECT_DOUBLE_EQ(q.next_pending_time(), 2.0);  // horizon skips it
    EXPECT_EQ(q.pop().id, 1u);
    EXPECT_EQ(q.pop().id, 2u);
}

TEST(event_queue, next_pending_time_tracks_updates_and_removals)
{
    event_queue q;
    EXPECT_DOUBLE_EQ(q.next_pending_time(), -1.0);
    q.push(make_event(1, 10.0));
    q.push(make_event(2, 20.0));
    EXPECT_DOUBLE_EQ(q.next_pending_time(), 10.0);
    EXPECT_TRUE(q.update_predicted(2, 5.0));
    EXPECT_DOUBLE_EQ(q.next_pending_time(), 5.0);
    EXPECT_TRUE(q.remove(2));
    EXPECT_DOUBLE_EQ(q.next_pending_time(), 10.0);
    // Cancellation behind the queue API's back (scheduler writes through
    // lookup()) must still be skipped by the horizon probe.
    q.lookup(1)->status = kevent_status::cancelled;
    EXPECT_DOUBLE_EQ(q.next_pending_time(), -1.0);
    q.cancel_all();
    EXPECT_DOUBLE_EQ(q.next_pending_time(), -1.0);
}

TEST(event_queue, heavy_churn_stays_consistent_through_compaction)
{
    // Many remove/update cycles accumulate heap tombstones past the
    // compaction threshold; ordering and the id index must survive.
    event_queue q;
    std::uint64_t next = 1;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 20; ++i) {
            q.push(make_event(next, static_cast<ktime>((next * 7) % 31)));
            ++next;
        }
        for (std::uint64_t id = next - 20; id < next; id += 2) {
            EXPECT_TRUE(q.remove(id));
        }
        for (std::uint64_t id = next - 19; id < next; id += 4) {
            EXPECT_TRUE(q.update_predicted(id, static_cast<ktime>(id % 13)));
        }
        while (q.size() > 5) q.pop();
    }
    ktime last = -1.0;
    while (!q.empty()) {
        const kevent ev = q.pop();
        EXPECT_GE(ev.predicted_time, last);
        last = ev.predicted_time;
    }
}

/// The pre-overhaul event queue, kept verbatim as a behavioral reference:
/// a (predicted, id)-ordered std::map plus an id index.
class reference_queue {
public:
    void push(kevent ev)
    {
        const key k{ev.predicted_time, ev.id};
        index_.emplace(ev.id, k);
        order_.emplace(k, std::move(ev));
    }
    kevent pop()
    {
        auto it = order_.begin();
        kevent out = std::move(it->second);
        index_.erase(out.id);
        order_.erase(it);
        return out;
    }
    bool remove(std::uint64_t id)
    {
        auto it = index_.find(id);
        if (it == index_.end()) return false;
        order_.erase(it->second);
        index_.erase(it);
        return true;
    }
    kevent* lookup(std::uint64_t id)
    {
        auto it = index_.find(id);
        return it == index_.end() ? nullptr : &order_.at(it->second);
    }
    bool update_predicted(std::uint64_t id, ktime predicted)
    {
        auto it = index_.find(id);
        if (it == index_.end()) return false;
        auto node = order_.extract(it->second);
        node.mapped().predicted_time = predicted;
        node.key() = key{predicted, id};
        it->second = node.key();
        order_.insert(std::move(node));
        return true;
    }
    [[nodiscard]] bool empty() const { return order_.empty(); }
    [[nodiscard]] std::size_t size() const { return order_.size(); }
    [[nodiscard]] ktime next_pending_time() const
    {
        for (const auto& [k, ev] : order_) {
            if (ev.status != kevent_status::cancelled) return ev.predicted_time;
        }
        return -1.0;
    }

private:
    struct key {
        ktime predicted;
        std::uint64_t id;
        bool operator<(const key& other) const
        {
            if (predicted != other.predicted) return predicted < other.predicted;
            return id < other.id;
        }
    };
    std::map<key, kevent> order_;
    std::unordered_map<std::uint64_t, key> index_;
};

TEST(event_queue, ab_fuzz_matches_reference_map_implementation)
{
    // Drive both implementations through an identical deterministic op mix
    // and assert identical pop orders, sizes, horizons, and lookups.
    event_queue q;
    reference_queue ref;
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    const auto next_rand = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    std::uint64_t next_id = 1;
    std::vector<std::uint64_t> live;
    for (int step = 0; step < 20'000; ++step) {
        const std::uint64_t r = next_rand();
        switch (r % 6) {
            case 0:
            case 1: {  // push
                kevent ev = make_event(next_id++, static_cast<ktime>(r % 997) / 7.0);
                live.push_back(ev.id);
                ref.push(ev);
                q.push(std::move(ev));
                break;
            }
            case 2: {  // pop
                if (ref.empty()) break;
                const kevent a = q.pop();
                const kevent b = ref.pop();
                ASSERT_EQ(a.id, b.id) << "pop order diverged at step " << step;
                ASSERT_DOUBLE_EQ(a.predicted_time, b.predicted_time);
                std::erase(live, a.id);
                break;
            }
            case 3: {  // remove a random live id (or a bogus one)
                const std::uint64_t id =
                    live.empty() ? next_id + 5 : live[r / 7 % live.size()];
                ASSERT_EQ(q.remove(id), ref.remove(id));
                std::erase(live, id);
                break;
            }
            case 4: {  // update_predicted on a random live id
                if (live.empty()) break;
                const std::uint64_t id = live[r / 7 % live.size()];
                const ktime predicted = static_cast<ktime>(r % 1009) / 3.0;
                ASSERT_EQ(q.update_predicted(id, predicted),
                          ref.update_predicted(id, predicted));
                break;
            }
            case 5: {  // cancel through both, probe horizon + lookup
                if (!live.empty() && r % 5 == 0) {
                    const std::uint64_t id = live[r / 7 % live.size()];
                    q.mark_cancelled(id);
                    kevent* ev = ref.lookup(id);
                    ev->status = kevent_status::cancelled;
                    ev->callback = nullptr;
                }
                ASSERT_DOUBLE_EQ(q.next_pending_time(), ref.next_pending_time());
                const std::uint64_t id =
                    live.empty() ? next_id : live[r / 9 % live.size()];
                kevent* a = q.lookup(id);
                kevent* b = ref.lookup(id);
                ASSERT_EQ(a == nullptr, b == nullptr);
                if (a != nullptr) {
                    ASSERT_EQ(a->status, b->status);
                    ASSERT_DOUBLE_EQ(a->predicted_time, b->predicted_time);
                }
                break;
            }
        }
        ASSERT_EQ(q.size(), ref.size());
        ASSERT_EQ(q.empty(), ref.empty());
    }
    while (!ref.empty()) {
        ASSERT_EQ(q.pop().id, ref.pop().id);
    }
    EXPECT_TRUE(q.empty());
}

TEST(kclock, ticks_advance_time_by_tick_length)
{
    kclock c(0.05);
    EXPECT_DOUBLE_EQ(c.display(), 0.0);
    c.tick(10);
    EXPECT_DOUBLE_EQ(c.display(), 0.5);
    EXPECT_EQ(c.ticks(), 10u);
}

TEST(kclock, tick_to_never_goes_backwards)
{
    kclock c;
    c.tick_to(5.0);
    EXPECT_DOUBLE_EQ(c.display(), 5.0);
    c.tick_to(3.0);
    EXPECT_DOUBLE_EQ(c.display(), 5.0);
}

TEST(kevent, enum_names_round_trip)
{
    EXPECT_STREQ(to_string(kevent_type::timeout), "timeout");
    EXPECT_STREQ(to_string(kevent_status::pending), "pending");
    EXPECT_STREQ(to_string(kevent_status::cancelled), "cancelled");
}

}  // namespace
