// Unit tests for the kernel event queue (§III-C1 API: push/pop/top/remove/
// lookup) and the kernel clock (§III-C2).
#include <gtest/gtest.h>

#include "kernel/event_queue.h"
#include "kernel/kclock.h"

namespace {

using namespace jsk::kernel;

kevent make_event(std::uint64_t id, ktime predicted)
{
    kevent ev;
    ev.id = id;
    ev.predicted_time = predicted;
    return ev;
}

TEST(event_queue, pop_returns_smallest_predicted_time)
{
    event_queue q;
    q.push(make_event(1, 30.0));
    q.push(make_event(2, 10.0));
    q.push(make_event(3, 20.0));
    EXPECT_EQ(q.pop().id, 2u);
    EXPECT_EQ(q.pop().id, 3u);
    EXPECT_EQ(q.pop().id, 1u);
    EXPECT_TRUE(q.empty());
}

TEST(event_queue, top_keeps_the_event)
{
    event_queue q;
    q.push(make_event(7, 5.0));
    ASSERT_NE(q.top(), nullptr);
    EXPECT_EQ(q.top()->id, 7u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(event_queue, equal_predictions_dispatch_in_registration_order)
{
    event_queue q;
    q.push(make_event(10, 1.0));
    q.push(make_event(11, 1.0));
    q.push(make_event(12, 1.0));
    EXPECT_EQ(q.pop().id, 10u);
    EXPECT_EQ(q.pop().id, 11u);
    EXPECT_EQ(q.pop().id, 12u);
}

TEST(event_queue, remove_by_id_regardless_of_predicted_time)
{
    event_queue q;
    q.push(make_event(1, 10.0));
    q.push(make_event(2, 20.0));
    EXPECT_TRUE(q.remove(2));
    EXPECT_FALSE(q.remove(2));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.lookup(2), nullptr);
}

TEST(event_queue, lookup_finds_live_events)
{
    event_queue q;
    q.push(make_event(5, 3.0));
    kevent* ev = q.lookup(5);
    ASSERT_NE(ev, nullptr);
    ev->status = kevent_status::ready;
    EXPECT_EQ(q.top()->status, kevent_status::ready);
}

TEST(event_queue, duplicate_id_throws)
{
    event_queue q;
    q.push(make_event(1, 1.0));
    EXPECT_THROW(q.push(make_event(1, 2.0)), std::invalid_argument);
}

TEST(event_queue, pop_empty_throws)
{
    event_queue q;
    EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(event_queue, cancel_all_marks_everything)
{
    event_queue q;
    q.push(make_event(1, 1.0));
    q.push(make_event(2, 2.0));
    q.cancel_all();
    EXPECT_EQ(q.top()->status, kevent_status::cancelled);
    EXPECT_EQ(q.lookup(2)->status, kevent_status::cancelled);
}

TEST(kclock, ticks_advance_time_by_tick_length)
{
    kclock c(0.05);
    EXPECT_DOUBLE_EQ(c.display(), 0.0);
    c.tick(10);
    EXPECT_DOUBLE_EQ(c.display(), 0.5);
    EXPECT_EQ(c.ticks(), 10u);
}

TEST(kclock, tick_to_never_goes_backwards)
{
    kclock c;
    c.tick_to(5.0);
    EXPECT_DOUBLE_EQ(c.display(), 5.0);
    c.tick_to(3.0);
    EXPECT_DOUBLE_EQ(c.display(), 5.0);
}

TEST(kevent, enum_names_round_trip)
{
    EXPECT_STREQ(to_string(kevent_type::timeout), "timeout");
    EXPECT_STREQ(to_string(kevent_status::pending), "pending");
    EXPECT_STREQ(to_string(kevent_status::cancelled), "cancelled");
}

}  // namespace
