// §VI robustness: an adversary who *knows* JSKernel is installed still
// cannot bypass it — reasons (i)-(iv) of the discussion section.
#include <gtest/gtest.h>

#include "kernel/kernel.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;

struct adversary_fixture : ::testing::Test {
    rt::browser b{rt::chrome_profile()};
    std::unique_ptr<kernel> k = kernel::boot(b);
};

TEST_F(adversary_fixture, backup_copy_pattern_still_reaches_the_kernel)
{
    // §III-B legitimate case: a site backs up the "native" definition and
    // calls it later (youtube's requestAnimationFrame pattern). The backup
    // is the kernel's definition, so the kernel still mediates.
    double reading = -1.0;
    b.main().post_task(0, [&] {
        auto backup = b.main().apis().performance_now;  // thinks it's native
        b.main().apis().performance_now = [] { return -1.0; };  // site redefinition
        b.main().consume(300 * sim::ms);
        reading = backup();  // calls the kernel definition
    });
    b.run();
    // Kernel time (sub-ms), not physical 300 ms, and not the bogus -1.
    EXPECT_GE(reading, 0.0);
    EXPECT_LT(reading, 1.0);
}

TEST_F(adversary_fixture, redefining_apis_cannot_reach_physical_time)
{
    // §VI(i)/(ii): the attacker may clobber every table entry; the timing
    // objects stay encapsulated in the kernel — nothing they can install
    // reads the physical clock.
    double observed = -1.0;
    b.main().post_task(0, [&] {
        auto& apis = b.main().apis();
        // The attacker replaces the clock with a chain to the current
        // definition (which is the kernel's — there is nothing older).
        auto current = apis.performance_now;
        apis.performance_now = [current] { return current(); };
        b.main().consume(1 * sim::sec);
        observed = apis.performance_now();
    });
    b.run();
    EXPECT_LT(observed, 5.0);  // still kernel ticks, physical second invisible
}

TEST_F(adversary_fixture, onmessage_trap_is_not_configurable)
{
    // §III-B: "The attacker cannot use Object.defineProperty to redefine
    // setter functions of critical properties like onmessage".
    b.register_worker_script("victim.js", [](rt::context& ctx) {
        // Attacker code inside the worker tries to re-trap the onmessage
        // setter to capture raw (kernel-overlay) traffic.
        const bool redefined = ctx.try_redefine_self_onmessage_trap([](rt::message_cb) {});
        EXPECT_FALSE(redefined);
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("victim.js"); });
    b.run();
}

TEST_F(adversary_fixture, kernel_is_injected_into_every_new_thread)
{
    // §VI(iii): every new JavaScript context gets its own kernel; worker
    // code observes kernel clocks from the first instruction.
    double first_reading = -1.0;
    b.register_worker_script("probe.js", [&](rt::context& ctx) {
        ctx.consume(400 * sim::ms);  // heavy startup compute
        first_reading = ctx.apis().performance_now();
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("probe.js"); });
    b.run();
    EXPECT_GE(first_reading, 0.0);
    EXPECT_LT(first_reading, 1.0);  // kernel time, not 400 ms
}

TEST_F(adversary_fixture, overlay_spoofing_does_not_reach_kernel_handlers)
{
    // An attacker crafting fake kernel-overlay ("sys") messages from the
    // worker must not be able to drive the main kernel's thread manager:
    // user payloads are wrapped before transport, so a spoofed object
    // arrives double-wrapped and is treated as data.
    b.register_worker_script("spoof.js", [](rt::context& ctx) {
        ctx.apis().post_message_to_parent(
            rt::make_object({{"__jsk", "sys"}, {"cmd", "ready-to-die"}}), {});
    });
    rt::js_value delivered;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("spoof.js");
        w->set_onmessage([&](const rt::message_event& e) { delivered = e.data; });
    });
    b.run();
    // The spoofed "sys" object was delivered as plain user data...
    ASSERT_TRUE(delivered.is_object());
    EXPECT_EQ(delivered.get("cmd").as_string(), "ready-to-die");
    // ...and the worker was NOT torn down by it.
    ASSERT_EQ(k->threads().threads().size(), 1u);
    EXPECT_FALSE(k->threads().threads()[0]->native_terminated);
    EXPECT_EQ(k->threads().threads()[0]->status, "ready");
}

TEST_F(adversary_fixture, sab_reads_tick_the_kernel_clock)
{
    // §III-E2: every SharedArrayBuffer access is kernel-mediated; a busy
    // SAB polling loop advances kernel time deterministically instead of
    // exposing a free timer.
    const auto ticks_before = k->clock().ticks();
    b.main().post_task(0, [&] {
        auto buf = b.main().apis().create_shared_buffer(1);
        for (int i = 0; i < 1000; ++i) (void)b.main().apis().sab_load(buf, 0, {});
    });
    b.run();
    EXPECT_GE(k->clock().ticks() - ticks_before, 1000u);
}

}  // namespace
