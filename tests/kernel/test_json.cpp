// Unit tests for the minimal JSON reader.
#include <gtest/gtest.h>

#include "kernel/json.h"

namespace {

using namespace jsk::kernel::json;

TEST(json, parses_primitives)
{
    EXPECT_TRUE(parse("null").is_null());
    EXPECT_TRUE(parse("true").as_bool());
    EXPECT_FALSE(parse("false").as_bool());
    EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-3.5e2").as_number(), -350.0);
    EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(json, parses_escapes)
{
    EXPECT_EQ(parse(R"("a\"b\\c\nd")").as_string(), "a\"b\\c\nd");
    EXPECT_THROW(parse(R"("\q")"), parse_error);  // unknown escapes still rejected
}

TEST(json, parses_nested_structures)
{
    const value v = parse(R"({"a": [1, {"b": true}], "c": "x"})");
    ASSERT_TRUE(v.is_object());
    const auto& arr = v.get("a").as_array();
    ASSERT_EQ(arr.size(), 2u);
    EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
    EXPECT_TRUE(arr[1].get("b").as_bool());
    EXPECT_EQ(v.get_string("c"), "x");
}

TEST(json, empty_containers)
{
    EXPECT_TRUE(parse("{}").as_object().empty());
    EXPECT_TRUE(parse("[]").as_array().empty());
}

TEST(json, whitespace_tolerant)
{
    const value v = parse("  {\n\t\"k\" :  [ 1 , 2 ]\n}  ");
    EXPECT_EQ(v.get("k").as_array().size(), 2u);
}

TEST(json, get_on_missing_key_is_null)
{
    const value v = parse(R"({"a": 1})");
    EXPECT_TRUE(v.get("missing").is_null());
    EXPECT_EQ(v.get_string("missing", "fallback"), "fallback");
}

TEST(json, rejects_malformed_documents)
{
    EXPECT_THROW(parse(""), parse_error);
    EXPECT_THROW(parse("{"), parse_error);
    EXPECT_THROW(parse("{\"a\" 1}"), parse_error);
    EXPECT_THROW(parse("[1,]"), parse_error);
    EXPECT_THROW(parse("tru"), parse_error);
    EXPECT_THROW(parse("1 2"), parse_error);        // trailing content
    EXPECT_THROW(parse("\"unterminated"), parse_error);
    EXPECT_THROW(parse("{\"a\":1,\"a\":2}"), parse_error);  // duplicate key
    EXPECT_THROW(parse("-"), parse_error);
}

TEST(json, parse_error_carries_offset)
{
    try {
        parse("[1, x]");
        FAIL() << "expected parse_error";
    } catch (const parse_error& e) {
        EXPECT_GT(e.offset(), 0u);
    }
}

TEST(json, parses_unicode_escapes)
{
    EXPECT_EQ(parse(R"("\u0041")").as_string(), "A");
    EXPECT_EQ(parse(R"("\u0001")").as_string(), std::string("\x01"));
    EXPECT_EQ(parse(R"("\u00e9")").as_string(), "\xc3\xa9");      // e-acute
    EXPECT_EQ(parse(R"("\u4e2d")").as_string(), "\xe4\xb8\xad");  // CJK
    // Surrogate pair: U+1F600.
    EXPECT_EQ(parse(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
    EXPECT_THROW(parse(R"("\u12")"), parse_error);      // truncated
    EXPECT_THROW(parse(R"("\uzzzz")"), parse_error);    // non-hex
    EXPECT_THROW(parse(R"("\ud83d")"), parse_error);    // unpaired high
    EXPECT_THROW(parse(R"("\ude00")"), parse_error);    // unpaired low
    EXPECT_THROW(parse(R"("\ud83dx")"), parse_error);   // pair cut short
}

TEST(json, dump_is_compact_key_ordered_and_round_trips)
{
    object o;
    o.emplace("b", value{2.0});
    o.emplace("a", value{std::string("hi\n\x01")});
    o.emplace("list", value{array{value{true}, value{nullptr}, value{0.5}}});
    const value v{std::move(o)};

    const std::string text = dump(v);
    // std::map iteration order: keys sorted; integers render without exponent;
    // control characters escape as \uXXXX.
    EXPECT_EQ(text, "{\"a\":\"hi\\n\\u0001\",\"b\":2,\"list\":[true,null,0.5]}");

    // Round trip through our own parser preserves structure and bytes.
    const value back = parse(text);
    EXPECT_EQ(dump(back), text);
    EXPECT_EQ(back.get_string("a"), std::string("hi\n\x01"));
}

TEST(json, dump_renders_large_and_fractional_numbers_deterministically)
{
    EXPECT_EQ(dump(value{1234567890.0}), "1234567890");
    EXPECT_EQ(dump(value{-3.0}), "-3");
    EXPECT_EQ(dump(value{0.1}), "0.10000000000000001");  // %.17g, bit-exact
    const value round_tripped = parse(dump(value{0.1}));
    EXPECT_EQ(round_tripped.as_number(), 0.1);
}

}  // namespace
