// Unit tests for the minimal JSON reader.
#include <gtest/gtest.h>

#include "kernel/json.h"

namespace {

using namespace jsk::kernel::json;

TEST(json, parses_primitives)
{
    EXPECT_TRUE(parse("null").is_null());
    EXPECT_TRUE(parse("true").as_bool());
    EXPECT_FALSE(parse("false").as_bool());
    EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-3.5e2").as_number(), -350.0);
    EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(json, parses_escapes)
{
    EXPECT_EQ(parse(R"("a\"b\\c\nd")").as_string(), "a\"b\\c\nd");
    EXPECT_THROW(parse("\"\\u0041\""), parse_error);  // \u intentionally unsupported
}

TEST(json, parses_nested_structures)
{
    const value v = parse(R"({"a": [1, {"b": true}], "c": "x"})");
    ASSERT_TRUE(v.is_object());
    const auto& arr = v.get("a").as_array();
    ASSERT_EQ(arr.size(), 2u);
    EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
    EXPECT_TRUE(arr[1].get("b").as_bool());
    EXPECT_EQ(v.get_string("c"), "x");
}

TEST(json, empty_containers)
{
    EXPECT_TRUE(parse("{}").as_object().empty());
    EXPECT_TRUE(parse("[]").as_array().empty());
}

TEST(json, whitespace_tolerant)
{
    const value v = parse("  {\n\t\"k\" :  [ 1 , 2 ]\n}  ");
    EXPECT_EQ(v.get("k").as_array().size(), 2u);
}

TEST(json, get_on_missing_key_is_null)
{
    const value v = parse(R"({"a": 1})");
    EXPECT_TRUE(v.get("missing").is_null());
    EXPECT_EQ(v.get_string("missing", "fallback"), "fallback");
}

TEST(json, rejects_malformed_documents)
{
    EXPECT_THROW(parse(""), parse_error);
    EXPECT_THROW(parse("{"), parse_error);
    EXPECT_THROW(parse("{\"a\" 1}"), parse_error);
    EXPECT_THROW(parse("[1,]"), parse_error);
    EXPECT_THROW(parse("tru"), parse_error);
    EXPECT_THROW(parse("1 2"), parse_error);        // trailing content
    EXPECT_THROW(parse("\"unterminated"), parse_error);
    EXPECT_THROW(parse("{\"a\":1,\"a\":2}"), parse_error);  // duplicate key
    EXPECT_THROW(parse("-"), parse_error);
}

TEST(json, parse_error_carries_offset)
{
    try {
        parse("[1, x]");
        FAIL() << "expected parse_error";
    } catch (const parse_error& e) {
        EXPECT_GT(e.offset(), 0u);
    }
}

}  // namespace
