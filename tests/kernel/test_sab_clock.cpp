// SharedArrayBuffer clock coverage (§III-E2): the classic SAB fine-grained
// timer [12] — a worker increments a shared slot at full speed while the main
// thread samples it around a secret operation.
#include <gtest/gtest.h>

#include "kernel/kernel.h"

namespace {

using namespace jsk;
namespace sim = jsk::sim;
namespace rt = jsk::rt;

/// The SAB timer attack: returns the counter delta observed across the
/// secret async operation.
double sab_measure(rt::browser& b, sim::time_ns secret)
{
    b.net().serve(rt::resource{"https://x/secret", "https://x", rt::resource_kind::data, 128,
                               0, 0, secret});
    auto delta = std::make_shared<double>(-1.0);
    b.register_worker_script("sab-ticker.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            // Receive the buffer, then increment it on a tight cadence.
            auto buf = e.data.as_shared_buffer();
            ctx.apis().set_interval(
                [&ctx, buf] {
                    const double v = ctx.apis().sab_load(buf, 0, {});
                    ctx.apis().sab_store(buf, 0, v + 1.0, {});
                },
                1 * sim::ms);
        });
    });
    b.main().post_task(0, [&b, delta] {
        auto& apis = b.main().apis();
        auto buf = apis.create_shared_buffer(1);
        auto w = apis.create_worker("sab-ticker.js");
        w->post_message(rt::js_value{buf});
        // Give the ticker a head start, then measure the secret.
        apis.set_timeout(
            [&b, buf, delta, w] {
                const double before = b.main().apis().sab_load(buf, 0, {});
                b.main().apis().fetch(
                    "https://x/secret", {},
                    [&b, buf, delta, before, w](const rt::fetch_result&) {
                        *delta = b.main().apis().sab_load(buf, 0, {}) - before;
                        w->terminate();
                    },
                    nullptr);
            },
            30 * sim::ms);
    });
    b.run_until(20 * sim::sec);
    return *delta;
}

TEST(sab_clock, leaks_on_the_plain_browser)
{
    rt::browser fast_browser(rt::chrome_profile());
    const double fast = sab_measure(fast_browser, 10 * sim::ms);
    rt::browser slow_browser(rt::chrome_profile());
    const double slow = sab_measure(slow_browser, 400 * sim::ms);
    EXPECT_GE(fast, 0.0);
    EXPECT_GT(slow, fast + 50.0);  // counter delta tracks the secret
}

TEST(sab_clock, kernel_mediation_makes_the_delta_secret_invariant)
{
    const auto run = [](sim::time_ns secret) {
        rt::browser b(rt::chrome_profile());
        auto k = kernel::kernel::boot(b);
        return sab_measure(b, secret);
    };
    const double fast = run(10 * sim::ms);
    const double slow = run(400 * sim::ms);
    EXPECT_EQ(fast, slow);
}

TEST(sab_clock, kernel_keeps_same_thread_sab_working)
{
    // Under the kernel, SAB has acquire-at-message semantics: a kernel sees
    // its own stores, and cross-thread values travel in message payloads
    // (which the kernel schedules). Same-thread round trips are unaffected.
    rt::browser b(rt::chrome_profile());
    auto k = kernel::kernel::boot(b);
    double local = -1.0;
    b.main().post_task(0, [&] {
        auto buf = b.main().apis().create_shared_buffer(2);
        b.main().apis().sab_store(buf, 1, 42.0, {});
        local = b.main().apis().sab_load(buf, 1, {});
    });
    b.run();
    EXPECT_DOUBLE_EQ(local, 42.0);
}

TEST(sab_clock, cross_thread_values_travel_via_messages)
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::kernel::boot(b);
    double via_message = -1.0;
    double via_raw_sab = -1.0;
    b.register_worker_script("sab-writer.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            auto buf = e.data.as_shared_buffer();
            ctx.apis().sab_store(buf, 0, 42.0, {});
            // Kernel-compatible sync: communicate the value explicitly.
            ctx.apis().post_message_to_parent(rt::js_value{42.0}, {});
        });
    });
    b.main().post_task(0, [&] {
        auto buf = b.main().apis().create_shared_buffer(1);
        auto w = b.main().apis().create_worker("sab-writer.js");
        w->set_onmessage([&, buf](const rt::message_event& e) {
            via_message = e.data.as_number();
            via_raw_sab = b.main().apis().sab_load(buf, 0, {});
        });
        w->post_message(rt::js_value{buf});
    });
    b.run();
    EXPECT_DOUBLE_EQ(via_message, 42.0);  // the supported channel
    EXPECT_DOUBLE_EQ(via_raw_sab, 0.0);   // raw cross-thread reads are shadowed
}

}  // namespace
