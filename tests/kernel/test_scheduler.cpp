// Tests for the two-stage scheduler and the predicted-order dispatcher
// (§III-D), driven through a booted kernel.
#include <gtest/gtest.h>

#include "kernel/kernel.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;

struct kernel_fixture : ::testing::Test {
    rt::browser b{rt::chrome_profile()};
    std::unique_ptr<kernel> k = kernel::boot(b);
};

TEST_F(kernel_fixture, pending_head_blocks_later_confirmed_events)
{
    std::vector<int> order;
    b.main().post_task(0, [&] {
        // Event A predicted at +1, event B predicted at +2.
        const auto a = k->sched().register_at(kevent_type::generic, 1.0, "a",
                                              [&] { order.push_back(1); });
        const auto b2 = k->sched().register_at(kevent_type::generic, 2.0, "b",
                                               [&] { order.push_back(2); });
        // B confirms first — but must wait for A.
        k->sched().confirm(b2);
        k->sched().confirm(a);
    });
    b.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(kernel_fixture, dispatch_advances_kernel_clock_to_predicted_time)
{
    b.main().post_task(0, [&] {
        const auto id = k->sched().register_at(kevent_type::generic, 7.5, "x", [] {});
        k->sched().confirm(id);
    });
    b.run();
    EXPECT_GE(k->clock().display(), 7.5);
}

TEST_F(kernel_fixture, cancel_pending_event_is_discarded)
{
    bool ran = false;
    b.main().post_task(0, [&] {
        const auto id =
            k->sched().register_at(kevent_type::generic, 1.0, "x", [&] { ran = true; });
        EXPECT_TRUE(k->sched().cancel(id));
        k->sched().confirm(id);  // native trigger racing the cancel: ignored
    });
    b.run();
    EXPECT_FALSE(ran);
}

TEST_F(kernel_fixture, cancel_ready_event_before_dispatch)
{
    bool blocked_ran = false;
    bool cancelled_ran = false;
    b.main().post_task(0, [&] {
        // Head stays pending so the second (ready) event cannot dispatch yet.
        k->sched().register_at(kevent_type::generic, 1.0, "head",
                               [&] { blocked_ran = true; });
        const auto id = k->sched().register_at(kevent_type::generic, 2.0, "victim",
                                               [&] { cancelled_ran = true; });
        k->sched().confirm(id);         // ready, queued behind the pending head
        EXPECT_TRUE(k->sched().cancel(id));  // case 2: confirmed, not dispatched
    });
    b.run();
    EXPECT_FALSE(cancelled_ran);
    EXPECT_FALSE(blocked_ran);  // head was never confirmed
}

TEST_F(kernel_fixture, cancel_after_dispatch_is_ignored)
{
    std::uint64_t id = 0;
    b.main().post_task(0, [&] {
        id = k->sched().register_at(kevent_type::generic, 1.0, "x", [] {});
        k->sched().confirm(id);
    });
    b.run();
    EXPECT_FALSE(k->sched().cancel(id));  // case 3
    EXPECT_EQ(k->events_dispatched(), 1u);
}

TEST_F(kernel_fixture, register_ready_dispatches_in_predicted_order)
{
    std::vector<int> order;
    b.main().post_task(0, [&] {
        k->sched().register_ready(kevent_type::generic, 5.0, [&] { order.push_back(5); },
                                  "late");
        k->sched().register_ready(kevent_type::generic, 2.0, [&] { order.push_back(2); },
                                  "early");
    });
    b.run();
    EXPECT_EQ(order, (std::vector<int>{2, 5}));
}

TEST_F(kernel_fixture, cancelled_head_does_not_block)
{
    std::vector<int> order;
    b.main().post_task(0, [&] {
        const auto head = k->sched().register_at(kevent_type::generic, 1.0, "head",
                                                 [&] { order.push_back(1); });
        k->sched().register_ready(kevent_type::generic, 2.0, [&] { order.push_back(2); },
                                  "next");
        k->sched().cancel(head);
    });
    b.run();
    EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST_F(kernel_fixture, deterministic_prediction_is_clock_plus_expected)
{
    deterministic_prediction pred;
    kclock clock;
    clock.tick_to(100.0);
    EXPECT_DOUBLE_EQ(pred.predict(clock, kevent_type::animation_frame, 0),
                     100.0 + pred.intervals.animation_frame);
    EXPECT_DOUBLE_EQ(pred.predict(clock, kevent_type::timeout, 25.0), 125.0);
    EXPECT_DOUBLE_EQ(pred.predict(clock, kevent_type::timeout, 0.0),
                     100.0 + pred.intervals.timeout_min);
    EXPECT_DOUBLE_EQ(pred.sequence_predict(10.0, 3, 1.0), 13.0);
}

TEST_F(kernel_fixture, fuzzy_prediction_adds_seeded_noise)
{
    fuzzy_prediction a(42), b2(42), c(43);
    kclock clock;
    const ktime pa = a.predict(clock, kevent_type::timeout, 5.0);
    const ktime pb = b2.predict(clock, kevent_type::timeout, 5.0);
    const ktime pc = c.predict(clock, kevent_type::timeout, 5.0);
    EXPECT_DOUBLE_EQ(pa, pb);  // same seed, same prediction
    EXPECT_NE(pa, pc);
    EXPECT_GE(pa, 5.0);
}

}  // namespace
