// Tests for JSON policy specifications and automatic policy synthesis.
#include <gtest/gtest.h>

#include "kernel/json.h"
#include "kernel/kernel.h"
#include "kernel/policy_spec.h"
#include "kernel/policy_synthesis.h"
#include "runtime/vuln.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;

// --- policy specs -----------------------------------------------------------

TEST(policy_spec, loads_the_default_bundle)
{
    auto p = load_policy_spec(default_policy_spec_json());
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), "jskernel-default-bundle");
}

TEST(policy_spec, fetch_block_honours_url_prefix)
{
    auto p = load_policy_spec(R"({
        "name": "t",
        "rules": [{"hook": "fetch", "action": "block", "url_prefix": "https://ads."}]
    })");
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    EXPECT_TRUE(p->on_fetch(*k, "https://ads.example/x"));
    EXPECT_FALSE(p->on_fetch(*k, "https://app.example/x"));
}

TEST(policy_spec, fetch_block_without_prefix_blocks_everything)
{
    auto p = load_policy_spec(R"({
        "name": "t",
        "rules": [{"hook": "fetch", "action": "block"}]
    })");
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    EXPECT_TRUE(p->on_fetch(*k, "https://anything"));
}

TEST(policy_spec, sanitize_uses_replacement)
{
    auto p = load_policy_spec(R"({
        "name": "t",
        "rules": [{"hook": "worker_error", "action": "sanitize", "replacement": "nope"}]
    })");
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    EXPECT_EQ(p->on_worker_error(*k, "leaky message"), "nope");
}

TEST(policy_spec, rejects_unknown_hooks_and_actions)
{
    EXPECT_THROW(
        load_policy_spec(R"({"name":"t","rules":[{"hook":"teleport","action":"block"}]})"),
        std::invalid_argument);
    EXPECT_THROW(
        load_policy_spec(R"({"name":"t","rules":[{"hook":"fetch","action":"explode"}]})"),
        std::invalid_argument);
}

TEST(policy_spec, rejects_mismatched_hook_action_pairs)
{
    EXPECT_THROW(load_policy_spec(
                     R"({"name":"t","rules":[{"hook":"fetch","action":"deny-private"}]})"),
                 std::invalid_argument);
}

TEST(policy_spec, rejects_empty_or_malformed_documents)
{
    EXPECT_THROW(load_policy_spec(R"({"name":"t","rules":[]})"), std::invalid_argument);
    EXPECT_THROW(load_policy_spec(R"({"name":"t"})"), std::invalid_argument);
    EXPECT_THROW(load_policy_spec("[]"), std::invalid_argument);
    EXPECT_THROW(load_policy_spec("{nonsense"), json::parse_error);
}

TEST(policy_spec, spec_bundle_defends_like_builtin_policies)
{
    // Kernel with CVE policies disabled but the JSON bundle installed must
    // still block the worker XHR SOP bypass.
    rt::browser b(rt::chrome_profile());
    rt::vuln_registry vulns(b.bus());
    kernel_options opts;
    opts.enable_cve_policies = false;
    auto k = kernel::boot(b, opts);
    k->add_policy(load_policy_spec(default_policy_spec_json()));

    b.set_page_origin("https://attacker.example");
    b.net().serve(rt::resource{"https://victim.example/api", "https://victim.example",
                               rt::resource_kind::data, 64, 0, 0, 0});
    b.register_worker_script("sop.js", [](rt::context& ctx) {
        ctx.apis().xhr("https://victim.example/api", [](const rt::fetch_result&) {});
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("sop.js"); });
    b.run();
    const auto* monitor = vulns.find("CVE-2013-1714");
    ASSERT_NE(monitor, nullptr);
    EXPECT_FALSE(monitor->triggered());
}

// --- policy synthesis ---------------------------------------------------------

TEST(policy_synthesis, learns_the_xhr_rule_from_an_exploit_trace)
{
    // Phase 1: run the CVE-2013-1714 exploit on a vulnerable browser with the
    // synthesizer recording.
    policy_synthesizer synth;
    {
        rt::browser b(rt::chrome_profile());
        synth.attach(b.bus());
        b.set_page_origin("https://attacker.example");
        b.net().serve(rt::resource{"https://victim.example/api", "https://victim.example",
                                   rt::resource_kind::data, 64, 0, 0, 0});
        b.register_worker_script("sop.js", [](rt::context& ctx) {
            ctx.apis().xhr("https://victim.example/api", [](const rt::fetch_result&) {});
        });
        b.main().post_task(0, [&] { b.main().apis().create_worker("sop.js"); });
        b.run();
    }
    auto result = synth.synthesize();
    ASSERT_NE(result.synthesized, nullptr);
    EXPECT_NE(result.policy_json.find("block-cross-origin"), std::string::npos);
    EXPECT_FALSE(result.requires_thread_manager);

    // Phase 2: a bare kernel plus the synthesized policy defends the exploit.
    rt::browser b(rt::chrome_profile());
    rt::vuln_registry vulns(b.bus());
    kernel_options opts;
    opts.enable_cve_policies = false;
    auto k = kernel::boot(b, opts);
    k->add_policy(std::move(result.synthesized));
    b.set_page_origin("https://attacker.example");
    b.net().serve(rt::resource{"https://victim.example/api", "https://victim.example",
                               rt::resource_kind::data, 64, 0, 0, 0});
    b.register_worker_script("sop.js", [](rt::context& ctx) {
        ctx.apis().xhr("https://victim.example/api", [](const rt::fetch_result&) {});
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("sop.js"); });
    b.run();
    EXPECT_FALSE(vulns.find("CVE-2013-1714")->triggered());
}

TEST(policy_synthesis, lifecycle_races_require_the_thread_manager)
{
    policy_synthesizer synth;
    rt::browser b(rt::chrome_profile());
    synth.attach(b.bus());
    b.register_worker_script("quit.js", [](rt::context& ctx) { ctx.apis().close_self(); });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("quit.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 50 * sim::ms);
    });
    b.run();
    const auto result = synth.synthesize();
    EXPECT_TRUE(result.requires_thread_manager);
    EXPECT_TRUE(result.policy_json.empty());
    EXPECT_EQ(result.synthesized, nullptr);
}

TEST(policy_synthesis, clean_trace_has_nothing_to_learn)
{
    policy_synthesizer synth;
    rt::browser b(rt::chrome_profile());
    synth.attach(b.bus());
    b.register_worker_script("idle.js", [](rt::context&) {});
    b.main().post_task(0, [&] { b.main().apis().create_worker("idle.js"); });
    b.run();
    EXPECT_THROW(synth.synthesize(), std::logic_error);
    EXPECT_FALSE(synth.trace().empty());
    synth.clear();
    EXPECT_TRUE(synth.trace().empty());
}

TEST(policy_synthesis, multiple_triggers_produce_multiple_rules)
{
    policy_synthesizer synth;
    rt::browser b(rt::chrome_profile());
    synth.attach(b.bus());
    b.set_page_origin("https://attacker.example");
    b.net().serve(rt::resource{"https://victim.example/api", "https://victim.example",
                               rt::resource_kind::data, 64, 0, 0, 0});
    b.set_private_browsing(true);
    b.register_worker_script("multi.js", [](rt::context& ctx) {
        ctx.apis().xhr("https://victim.example/api", [](const rt::fetch_result&) {});
        ctx.apis().import_scripts({"https://victim.example/missing.js"});
    });
    b.main().post_task(0, [&] {
        b.main().apis().indexeddb_put("db", "k", rt::js_value{"v"});
        b.main().apis().create_worker("multi.js");
    });
    b.run();
    const auto result = synth.synthesize();
    EXPECT_GE(result.trigger_kinds.size(), 3u);
    EXPECT_NE(result.policy_json.find("\"xhr\""), std::string::npos);
    EXPECT_NE(result.policy_json.find("\"indexeddb\""), std::string::npos);
    EXPECT_NE(result.policy_json.find("\"import_scripts\""), std::string::npos);
}

// --- iframe kernel injection (§VI-iii) -------------------------------------------

TEST(iframe_injection, frames_get_their_own_kernel)
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    double frame_reading = -1.0;
    b.main().post_task(0, [&] {
        rt::context* frame = b.main().apis().create_iframe("ad-frame");
        ASSERT_NE(frame, nullptr);
        EXPECT_EQ(frame->kind(), rt::context_kind::frame);
        // The frame's clock is a kernel clock from the first instruction.
        frame->consume(300 * sim::ms);
        frame_reading = frame->apis().performance_now();
    });
    b.run();
    EXPECT_GE(frame_reading, 0.0);
    EXPECT_LT(frame_reading, 1.0);
}

TEST(iframe_injection, frame_clock_is_separate_from_main_clock)
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    b.main().post_task(0, [&] {
        rt::context* frame = b.main().apis().create_iframe("f");
        // Burn main-kernel ticks; the frame kernel must not see them.
        for (int i = 0; i < 200; ++i) (void)b.main().apis().performance_now();
        const double frame_now = frame->apis().performance_now();
        EXPECT_LT(frame_now, 1.0);
        EXPECT_GT(b.main().apis().performance_now(), 9.0);  // 200 x 0.05 ms
    });
    b.run();
}

TEST(iframe_injection, plain_browser_frames_share_physical_clock)
{
    rt::browser b(rt::chrome_profile());
    double frame_reading = -1.0;
    b.main().post_task(0, [&] {
        rt::context* frame = b.main().apis().create_iframe("f");
        frame->consume(250 * sim::ms);
        frame_reading = frame->apis().performance_now();
    });
    b.run();
    EXPECT_NEAR(frame_reading, 250.0, 1.0);
}

}  // namespace
