// Tests for the kernel journal: the checkable form of the determinism claim.
#include <gtest/gtest.h>

#include "kernel/json.h"
#include "kernel/kernel.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;

/// A little app touching several event types; `secret` perturbs physical
/// cost, `extra_latency` perturbs the network.
journal run_app(sim::time_ns secret, sim::time_ns extra_latency)
{
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    b.net().serve(rt::resource{"https://x/r", "https://x", rt::resource_kind::data, 1'000, 0,
                               0, extra_latency});
    b.main().post_task(0, [&b, secret] {
        auto& apis = b.main().apis();
        apis.set_timeout([&b, secret] { b.main().consume(secret); }, 3 * sim::ms);
        apis.set_timeout([] {}, 7 * sim::ms);
        apis.fetch("https://x/r", {}, [](const rt::fetch_result&) {}, nullptr);
        apis.request_animation_frame([](double) {});
    });
    b.run();
    return k->dispatch_journal();
}

TEST(journal, identical_across_physical_perturbations)
{
    const journal a = run_app(1 * sim::ms, 5 * sim::ms);
    const journal b = run_app(900 * sim::ms, 700 * sim::ms);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.first_divergence(b), journal::npos);
    EXPECT_GT(a.size(), 3u);
}

TEST(journal, different_programs_diverge)
{
    const journal a = run_app(1 * sim::ms, 0);
    // A different program: one extra timer.
    rt::browser b(rt::chrome_profile());
    auto k = kernel::boot(b);
    b.net().serve(
        rt::resource{"https://x/r", "https://x", rt::resource_kind::data, 1'000, 0, 0, 0});
    b.main().post_task(0, [&b] {
        auto& apis = b.main().apis();
        apis.set_timeout([] {}, 1 * sim::ms);  // extra
        apis.set_timeout([] {}, 3 * sim::ms);
        apis.set_timeout([] {}, 7 * sim::ms);
        apis.fetch("https://x/r", {}, [](const rt::fetch_result&) {}, nullptr);
        apis.request_animation_frame([](double) {});
    });
    b.run();
    EXPECT_FALSE(a == k->dispatch_journal());
    EXPECT_NE(a.first_divergence(k->dispatch_journal()), journal::npos);
}

TEST(journal, records_types_and_order)
{
    const journal j = run_app(0, 0);
    ASSERT_GE(j.size(), 4u);
    // Sequence numbers are dense and ordered.
    for (std::size_t i = 0; i < j.size(); ++i) EXPECT_EQ(j.entries()[i].seq, i);
    // Dispatch order follows predicted time (monotone).
    for (std::size_t i = 1; i < j.size(); ++i) {
        EXPECT_GE(j.entries()[i].predicted_time, j.entries()[i - 1].predicted_time);
    }
}

TEST(journal, json_dump_is_valid_and_deterministic)
{
    const journal a = run_app(0, 0);
    const journal b = run_app(0, 0);
    EXPECT_EQ(a.to_json(), b.to_json());
    // The dump parses with our own JSON reader.
    const auto doc = json::parse(a.to_json());
    ASSERT_TRUE(doc.is_array());
    EXPECT_EQ(doc.as_array().size(), a.size());
    EXPECT_EQ(doc.as_array()[0].get_string("type"), "timeout");
}

TEST(journal, clear_resets)
{
    journal j;
    kevent ev;
    ev.id = 1;
    j.record(ev);
    EXPECT_EQ(j.size(), 1u);
    j.clear();
    EXPECT_EQ(j.size(), 0u);
    j.record(ev);
    EXPECT_EQ(j.entries()[0].seq, 0u);  // sequence restarts
}

}  // namespace
