// Unit tests for the vulnerability-specific policies (§II-B, §IV-B).
#include <gtest/gtest.h>

#include "kernel/kernel.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;

struct policy_fixture : ::testing::Test {
    rt::browser b{rt::chrome_profile()};
    std::unique_ptr<kernel> k = kernel::boot(b);
};

TEST_F(policy_fixture, default_set_is_the_five_paper_policies)
{
    const auto& policies = k->policies();
    ASSERT_EQ(policies.size(), 5u);
    std::vector<std::string> names;
    for (const auto& p : policies) names.emplace_back(p->name());
    EXPECT_NE(std::find(names.begin(), names.end(), "worker-xhr-origin-check"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "onmessage-validation"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "private-idb-deny"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "error-sanitizer"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "mediated-import"), names.end());
}

TEST_F(policy_fixture, policies_can_be_disabled_via_options)
{
    rt::browser bare(rt::chrome_profile());
    kernel_options opts;
    opts.enable_cve_policies = false;
    auto bare_kernel = kernel::boot(bare, opts);
    EXPECT_TRUE(bare_kernel->policies().empty());
}

TEST_F(policy_fixture, xhr_origin_check_blocks_only_cross_origin)
{
    EXPECT_TRUE(k->policy_block_xhr("https://victim/api", true));
    EXPECT_FALSE(k->policy_block_xhr("https://self/api", false));
}

TEST_F(policy_fixture, onmessage_validation_rejects_null_handlers)
{
    EXPECT_TRUE(k->policy_reject_onmessage(false));
    EXPECT_FALSE(k->policy_reject_onmessage(true));
}

TEST_F(policy_fixture, private_idb_denies_only_private_mode)
{
    EXPECT_TRUE(k->policy_deny_idb(true));
    EXPECT_FALSE(k->policy_deny_idb(false));
}

TEST_F(policy_fixture, error_sanitizer_replaces_message)
{
    const std::string raw = "NetworkError at https://victim.example/secret-path";
    EXPECT_EQ(k->policy_sanitize_error(raw), "Script error.");
}

TEST_F(policy_fixture, mediated_import_applies_to_cross_origin_only)
{
    EXPECT_TRUE(k->policy_mediate_import("https://victim/x.js", true));
    EXPECT_FALSE(k->policy_mediate_import("https://self/x.js", false));
}

TEST_F(policy_fixture, custom_policies_compose_first_match_wins)
{
    struct allowlist_policy final : policy {
        const char* name() const override { return "allowlist"; }
        bool on_fetch(kernel&, const std::string& url) override
        {
            return url.find("blocked") != std::string::npos;
        }
    };
    k->add_policy(std::make_unique<allowlist_policy>());
    EXPECT_TRUE(k->policy_block_fetch("https://x/blocked/path"));
    EXPECT_FALSE(k->policy_block_fetch("https://x/fine"));
}

TEST_F(policy_fixture, blocked_fetch_fails_through_a_kernel_event)
{
    struct block_all final : policy {
        const char* name() const override { return "block-all"; }
        bool on_fetch(kernel&, const std::string&) override { return true; }
    };
    k->add_policy(std::make_unique<block_all>());
    rt::fetch_result got;
    bool then_called = false;
    b.main().post_task(0, [&] {
        b.main().apis().fetch(
            "https://anything/x", {}, [&](const rt::fetch_result&) { then_called = true; },
            [&](const rt::fetch_result& r) { got = r; });
    });
    b.run();
    EXPECT_FALSE(then_called);
    EXPECT_EQ(got.error, "blocked by kernel policy");
}

TEST_F(policy_fixture, factories_report_their_cves)
{
    EXPECT_STREQ(make_policy_worker_xhr_origin_check()->cve(), "CVE-2013-1714");
    EXPECT_STREQ(make_policy_onmessage_validation()->cve(), "CVE-2013-5602");
    EXPECT_STREQ(make_policy_private_idb_deny()->cve(), "CVE-2017-7843");
    EXPECT_STREQ(make_policy_error_sanitizer()->cve(), "CVE-2014-1487");
    EXPECT_STREQ(make_policy_mediated_import()->cve(), "CVE-2011-1190");
}

}  // namespace
