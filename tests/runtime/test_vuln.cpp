// Integration tests: each CVE state machine triggers on its documented
// sequence in the vulnerable (legacy) engine, and stays quiet otherwise.
#include <gtest/gtest.h>

#include "runtime/browser.h"
#include "runtime/vuln.h"

namespace {

using namespace jsk::rt;
namespace sim = jsk::sim;

struct vuln_fixture : ::testing::Test {
    browser b{chrome_profile()};
    vuln_registry vulns{b.bus()};

    bool triggered(const std::string& id) const
    {
        const auto* monitor = vulns.find(id);
        return monitor != nullptr && monitor->triggered();
    }
};

TEST_F(vuln_fixture, registry_knows_all_twelve)
{
    EXPECT_EQ(vulns.monitors().size(), 12u);
    EXPECT_NE(vulns.find("CVE-2018-5092"), nullptr);
    EXPECT_EQ(vulns.find("CVE-0000-0000"), nullptr);
    EXPECT_TRUE(vulns.triggered_ids().empty());
}

TEST_F(vuln_fixture, cve_2018_5092_abort_after_false_termination)
{
    b.net().serve(resource{"https://attacker.example/f0", "https://attacker.example",
                           resource_kind::data, 100'000, 0, 0, 0});
    b.register_worker_script("fetcher.js", [](context& ctx) {
        abort_controller ctl;
        fetch_options opts;
        opts.signal = ctl.signal;
        ctx.apis().fetch("https://attacker.example/f0", opts, nullptr, nullptr);
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("fetcher.js");
        // False termination while the fetch is in flight, then a reload-style
        // teardown aborts everything — including the freed request.
        b.main().apis().set_timeout([w] { w->terminate(); }, 5 * sim::ms);
        b.main().apis().set_timeout([&] { b.main().apis().reload(); }, 10 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(triggered("CVE-2018-5092"));
}

TEST_F(vuln_fixture, cve_2018_5092_not_triggered_without_termination)
{
    b.net().serve(resource{"https://attacker.example/f0", "https://attacker.example",
                           resource_kind::data, 100'000, 0, 0, 0});
    b.register_worker_script("fetcher.js", [](context& ctx) {
        ctx.apis().fetch("https://attacker.example/f0", {}, nullptr, nullptr);
    });
    b.main().post_task(0, [&] {
        b.main().apis().create_worker("fetcher.js");
        b.main().apis().set_timeout([&] { b.main().apis().reload(); }, 10 * sim::ms);
    });
    b.run();
    EXPECT_FALSE(triggered("CVE-2018-5092"));
}

TEST_F(vuln_fixture, cve_2017_7843_private_idb_persists)
{
    b.set_private_browsing(true);
    b.main().post_task(0, [&] {
        b.main().apis().indexeddb_put("tracker", "id", js_value{"fingerprint"});
    });
    b.run();
    b.end_private_session();
    EXPECT_TRUE(triggered("CVE-2017-7843"));
}

TEST_F(vuln_fixture, cve_2017_7843_fixed_engine_does_not_persist)
{
    b.bugs().idb_private_mode_persists = false;
    b.set_private_browsing(true);
    b.main().post_task(0, [&] {
        b.main().apis().indexeddb_put("tracker", "id", js_value{"fingerprint"});
    });
    b.run();
    b.end_private_session();
    EXPECT_FALSE(triggered("CVE-2017-7843"));
}

TEST_F(vuln_fixture, cve_2015_7215_import_scripts_error_leak)
{
    b.set_page_origin("https://attacker.example");
    b.register_worker_script("prober.js", [](context& ctx) {
        ctx.apis().import_scripts({"https://victim.example/secret-redirect"});
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("prober.js"); });
    b.run();
    EXPECT_TRUE(triggered("CVE-2015-7215"));
}

TEST_F(vuln_fixture, cve_2014_3194_message_to_terminated_worker)
{
    b.register_worker_script("sink.js", [](context& ctx) {
        ctx.apis().set_self_onmessage([](const message_event&) {});
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("sink.js");
        b.main().apis().set_timeout(
            [&, w] {
                w->post_message(js_value{1});  // in flight...
                w->terminate();                // ...when the worker dies
            },
            5 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(triggered("CVE-2014-3194"));
}

TEST_F(vuln_fixture, cve_2014_1719_terminate_mid_dispatch)
{
    b.register_worker_script("cruncher.js", [](context& ctx) {
        ctx.consume(200 * sim::ms);  // long synchronous work at startup
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("cruncher.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 50 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(triggered("CVE-2014-1719"));
}

TEST_F(vuln_fixture, cve_2014_1488_transferable_from_dying_worker)
{
    b.register_worker_script("transfer.js", [](context& ctx) {
        auto buf = std::make_shared<array_buffer>();
        buf->data.assign(64, 1);
        ctx.apis().post_message_to_parent(js_value{buf}, {buf});
        ctx.apis().close_self();  // worker gone before delivery
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("transfer.js"); });
    b.run();
    EXPECT_TRUE(triggered("CVE-2014-1488"));
}

TEST_F(vuln_fixture, cve_2014_1487_worker_error_leak)
{
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("https://victim.example/missing.js");
        w->set_onerror([](const std::string&) {});
    });
    b.run();
    EXPECT_TRUE(triggered("CVE-2014-1487"));
}

TEST_F(vuln_fixture, cve_2013_6646_reload_with_inflight_messages)
{
    b.register_worker_script("chatty.js", [](context& ctx) {
        for (int i = 0; i < 20; ++i) ctx.apis().post_message_to_parent(js_value{i}, {});
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("chatty.js");
        w->set_onmessage([&](const message_event&) {
            b.main().apis().reload();  // teardown while messages still in flight
        });
    });
    b.run();
    EXPECT_TRUE(triggered("CVE-2013-6646"));
}

TEST_F(vuln_fixture, cve_2013_5602_null_onmessage_assignment)
{
    b.register_worker_script("sink.js", [](context&) {});
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("sink.js");
        w->set_onmessage(nullptr);
    });
    b.run();
    EXPECT_TRUE(triggered("CVE-2013-5602"));
}

TEST_F(vuln_fixture, cve_2013_1714_worker_xhr_sop_bypass)
{
    b.set_page_origin("https://attacker.example");
    b.net().serve(resource{"https://victim.example/api", "https://victim.example",
                           resource_kind::data, 100, 0, 0, 0});
    fetch_result leaked;
    b.register_worker_script("sop.js", [&](context& ctx) {
        ctx.apis().xhr("https://victim.example/api",
                       [&](const fetch_result& r) { leaked = r; });
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("sop.js"); });
    b.run();
    EXPECT_TRUE(triggered("CVE-2013-1714"));
    EXPECT_TRUE(leaked.ok);  // cross-origin data reached the worker
}

TEST_F(vuln_fixture, cve_2011_1190_cross_origin_import_exposes_source)
{
    b.set_page_origin("https://attacker.example");
    b.net().serve(resource{"https://victim.example/lib.js", "https://victim.example",
                           resource_kind::script, 2'000, 0, 0, 0});
    b.register_worker_script("import.js", [](context& ctx) {
        ctx.apis().import_scripts({"https://victim.example/lib.js"});
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("import.js"); });
    b.run();
    EXPECT_TRUE(triggered("CVE-2011-1190"));
}

TEST_F(vuln_fixture, cve_2010_4576_double_termination)
{
    b.register_worker_script("quit.js", [](context& ctx) { ctx.apis().close_self(); });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("quit.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 50 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(triggered("CVE-2010-4576"));
}

TEST_F(vuln_fixture, reset_all_clears_triggers)
{
    b.register_worker_script("quit.js", [](context& ctx) { ctx.apis().close_self(); });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("quit.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 50 * sim::ms);
    });
    b.run();
    ASSERT_FALSE(vulns.triggered_ids().empty());
    vulns.reset_all();
    EXPECT_TRUE(vulns.triggered_ids().empty());
}

}  // namespace
