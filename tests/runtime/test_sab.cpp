// SharedArrayBuffer native surface: bounds validation, zero-slot buffers,
// cross-worker buffer identity, mixed-size half accesses and the
// Atomics-style seq-cst operations — plain and under the JSKernel shadow.
#include <gtest/gtest.h>

#include <stdexcept>

#include "defenses/defense.h"
#include "runtime/browser.h"
#include "wm/model.h"

namespace {

using namespace jsk::rt;
namespace sim = jsk::sim;
namespace wm = jsk::wm;

// --- bounds validation ------------------------------------------------------

TEST(sab_bounds, load_out_of_range_throws)
{
    browser b(chrome_profile());
    shared_buffer_ptr buf;
    b.main().post_task(0, [&] { buf = b.main().apis().create_shared_buffer(2); });
    b.run();
    b.main().post_task(0, [&] { (void)b.main().apis().sab_load(buf, 2, {}); });
    EXPECT_THROW(b.run(), std::out_of_range);
}

TEST(sab_bounds, store_out_of_range_throws)
{
    browser b(chrome_profile());
    shared_buffer_ptr buf;
    b.main().post_task(0, [&] { buf = b.main().apis().create_shared_buffer(2); });
    b.run();
    b.main().post_task(0, [&] { b.main().apis().sab_store(buf, 7, 1.0, {}); });
    EXPECT_THROW(b.run(), std::out_of_range);
}

TEST(sab_bounds, null_buffer_throws)
{
    browser b(chrome_profile());
    b.main().post_task(0, [&] { (void)b.main().apis().sab_load(nullptr, 0, {}); });
    EXPECT_THROW(b.run(), std::out_of_range);
}

TEST(sab_bounds, zero_slot_buffer_rejects_every_index)
{
    browser b(chrome_profile());
    shared_buffer_ptr buf;
    b.main().post_task(0, [&] { buf = b.main().apis().create_shared_buffer(0); });
    b.run();
    ASSERT_NE(buf, nullptr);
    EXPECT_EQ(buf->slots.size(), 0u);
    b.main().post_task(0, [&] { (void)b.main().apis().sab_load(buf, 0, {}); });
    EXPECT_THROW(b.run(), std::out_of_range);
}

TEST(sab_bounds, atomics_validate_like_plain_accesses)
{
    {
        browser b(chrome_profile());
        shared_buffer_ptr buf;
        b.main().post_task(0, [&] { buf = b.main().apis().create_shared_buffer(1); });
        b.run();
        b.main().post_task(0, [&] { (void)b.main().apis().atomics_add(buf, 1, 1.0); });
        EXPECT_THROW(b.run(), std::out_of_range);
    }
    {
        browser b(chrome_profile());
        b.main().post_task(0, [&] {
            (void)b.main().apis().atomics_compare_exchange(nullptr, 0, 0.0, 1.0);
        });
        EXPECT_THROW(b.run(), std::out_of_range);
    }
}

// --- cross-worker identity --------------------------------------------------

TEST(sab_identity, one_buffer_is_shared_across_worker_and_main)
{
    // The same shared_buffer object captured by a worker script is the same
    // memory the main context reads — a store on the worker thread is
    // visible to a (later, message-ordered) main-thread load.
    browser b(chrome_profile());
    shared_buffer_ptr buf;
    b.main().post_task(0, [&] { buf = b.main().apis().create_shared_buffer(1); });
    b.run();

    b.register_worker_script("writer.js", [buf2 = &buf](context& ctx) {
        ctx.apis().set_self_onmessage([&ctx, buf2](const message_event& e) {
            ctx.apis().sab_store(*buf2, 0, e.data.as_number(), {});
            ctx.apis().post_message_to_parent(js_value{1.0}, {});
        });
    });

    double seen = -1.0;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("writer.js");
        w->set_onmessage([&](const message_event&) {
            seen = b.main().apis().sab_load(buf, 0, {});
        });
        w->post_message(js_value{42.0});
    });
    b.run();
    EXPECT_DOUBLE_EQ(seen, 42.0);
}

// --- mixed-size half accesses ----------------------------------------------

TEST(sab_halves, half_stores_compose_and_read_back_through_the_api)
{
    browser b(chrome_profile());
    double lo = -1.0;
    double hi = -1.0;
    b.main().post_task(0, [&] {
        auto buf = b.main().apis().create_shared_buffer(1);
        b.main().apis().sab_store(buf, 0, 7.0,
                                  {wm::ordering::unordered, wm::part::lo});
        b.main().apis().sab_store(buf, 0, 9.0,
                                  {wm::ordering::unordered, wm::part::hi});
        lo = b.main().apis().sab_load(buf, 0,
                                      {wm::ordering::unordered, wm::part::lo});
        hi = b.main().apis().sab_load(buf, 0,
                                      {wm::ordering::unordered, wm::part::hi});
    });
    b.run();
    EXPECT_DOUBLE_EQ(lo, 7.0);
    EXPECT_DOUBLE_EQ(hi, 9.0);
}

// --- Atomics-style seq-cst operations ---------------------------------------

TEST(sab_atomics, load_store_add_and_cas_semantics)
{
    browser b(chrome_profile());
    double old_add = -1.0, after_add = -1.0;
    double cas_miss = -1.0, cas_hit = -1.0, final_value = -1.0;
    b.main().post_task(0, [&] {
        auto buf = b.main().apis().create_shared_buffer(1);
        b.main().apis().atomics_store(buf, 0, 5.0);
        old_add = b.main().apis().atomics_add(buf, 0, 2.0);  // returns old
        after_add = b.main().apis().atomics_load(buf, 0);
        cas_miss = b.main().apis().atomics_compare_exchange(buf, 0, 99.0, 0.0);
        cas_hit = b.main().apis().atomics_compare_exchange(buf, 0, 7.0, 11.0);
        final_value = b.main().apis().atomics_load(buf, 0);
    });
    b.run();
    EXPECT_DOUBLE_EQ(old_add, 5.0);
    EXPECT_DOUBLE_EQ(after_add, 7.0);
    EXPECT_DOUBLE_EQ(cas_miss, 7.0);  // expected 99 -> no exchange, returns old
    EXPECT_DOUBLE_EQ(cas_hit, 7.0);   // expected 7 -> exchanged, returns old
    EXPECT_DOUBLE_EQ(final_value, 11.0);
}

// --- under the JSKernel shadow ----------------------------------------------

TEST(sab_kernel, shadow_round_trips_and_validates_bounds)
{
    browser b(chrome_profile());
    auto def = jsk::defenses::make_defense(jsk::defenses::defense_id::jskernel, 17);
    def->install(b);

    double value = -1.0, old_add = -1.0, after = -1.0;
    b.main().post_task(0, [&] {
        auto buf = b.main().apis().create_shared_buffer(2);
        b.main().apis().sab_store(buf, 0, 3.5, {});
        value = b.main().apis().sab_load(buf, 0, {});
        b.main().apis().atomics_store(buf, 1, 1.0);
        old_add = b.main().apis().atomics_add(buf, 1, 4.0);
        after = b.main().apis().atomics_load(buf, 1);
    });
    b.run();
    EXPECT_DOUBLE_EQ(value, 3.5);
    EXPECT_DOUBLE_EQ(old_add, 1.0);
    EXPECT_DOUBLE_EQ(after, 5.0);
}

TEST(sab_kernel, shadow_path_validates_bounds)
{
    for (const bool use_atomics : {false, true}) {
        browser b(chrome_profile());
        auto def =
            jsk::defenses::make_defense(jsk::defenses::defense_id::jskernel, 17);
        def->install(b);
        shared_buffer_ptr buf;
        b.main().post_task(0, [&] { buf = b.main().apis().create_shared_buffer(1); });
        b.run();
        b.main().post_task(0, [&] {
            if (use_atomics) {
                (void)b.main().apis().atomics_add(buf, 5, 1.0);
            } else {
                (void)b.main().apis().sab_load(buf, 5, {});
            }
        });
        EXPECT_THROW(b.run(), std::out_of_range);
    }
}

}  // namespace
