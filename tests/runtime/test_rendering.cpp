// Unit tests for the renderer: rAF cadence, paint-cost effects on frame
// timing, CSS animations, and video cues.
#include <gtest/gtest.h>

#include "runtime/browser.h"

namespace {

using namespace jsk::rt;
namespace sim = jsk::sim;

TEST(rendering, raf_fires_on_the_vsync_grid)
{
    browser b(chrome_profile());
    std::vector<double> stamps;
    std::function<void(double)> frame = [&](double ts) {
        stamps.push_back(ts);
        if (stamps.size() < 5) b.main().apis().request_animation_frame(frame);
    };
    b.main().post_task(0, [&] { b.main().apis().request_animation_frame(frame); });
    b.run();
    ASSERT_EQ(stamps.size(), 5u);
    for (std::size_t i = 1; i < stamps.size(); ++i) {
        EXPECT_NEAR(stamps[i] - stamps[i - 1], 16.666, 0.5);
    }
}

TEST(rendering, heavy_paint_work_delays_the_next_frame)
{
    browser b(chrome_profile());
    std::vector<double> stamps;
    std::function<void(double)> frame = [&](double ts) {
        stamps.push_back(ts);
        if (stamps.size() == 1) {
            // 40 ms of paint work: the next frame slips by at least 2 vsyncs.
            b.painter().add_paint_work(40 * sim::ms);
        }
        if (stamps.size() < 3) b.main().apis().request_animation_frame(frame);
    };
    b.main().post_task(0, [&] { b.main().apis().request_animation_frame(frame); });
    b.run();
    ASSERT_EQ(stamps.size(), 3u);
    EXPECT_GT(stamps[1] - stamps[0], 33.0);
}

TEST(rendering, cancel_frame_prevents_callback)
{
    browser b(chrome_profile());
    bool fired = false;
    b.main().post_task(0, [&] {
        const auto id = b.main().apis().request_animation_frame([&](double) { fired = true; });
        b.main().apis().cancel_animation_frame(id);
    });
    b.run();
    EXPECT_FALSE(fired);
}

TEST(rendering, visited_links_paint_slower)
{
    browser b(chrome_profile());
    b.history().mark_visited("https://visited.example");
    auto visited = std::make_shared<element>("a");
    visited->set_attribute_raw("href", "https://visited.example");
    auto unvisited = std::make_shared<element>("a");
    unvisited->set_attribute_raw("href", "https://unvisited.example");
    EXPECT_GT(b.painter().element_paint_cost(*visited),
              b.painter().element_paint_cost(*unvisited));
}

TEST(rendering, svg_filter_cost_scales_with_resolution)
{
    browser b(chrome_profile());
    b.net().serve(resource{"lo.png", "https://victim", resource_kind::image, 1000, 64, 64, 0});
    b.net().serve(resource{"hi.png", "https://victim", resource_kind::image, 1000, 512, 512, 0});
    auto make_filtered = [](const std::string& src) {
        auto el = std::make_shared<element>("img");
        el->set_attribute_raw("src", src);
        el->set_attribute_raw("filter", "erode");
        return el;
    };
    const auto lo_cost = b.painter().element_paint_cost(*make_filtered("lo.png"));
    const auto hi_cost = b.painter().element_paint_cost(*make_filtered("hi.png"));
    EXPECT_GT(hi_cost, 10 * lo_cost);
}

TEST(rendering, css_animation_progress_advances_per_frame)
{
    browser b(chrome_profile());
    auto target = std::make_shared<element>("div");
    int ticks = 0;
    b.main().post_task(0, [&] {
        b.painter().start_animation(target, 10, [&](double) { ++ticks; });
    });
    b.run();
    EXPECT_EQ(ticks, 10);
    EXPECT_EQ(target->attribute("animation-progress"), std::to_string(1.0));
}

TEST(rendering, video_cues_fire_periodically_until_stopped)
{
    browser b(chrome_profile());
    auto video = std::make_shared<element>("video");
    int cues = 0;
    b.main().post_task(0, [&] {
        b.main().apis().set_cue_callback(video, [&] {
            if (++cues == 4) b.painter().stop_video(video);
        });
        b.main().apis().play_video(video, 100 * sim::ms);
    });
    b.run();
    EXPECT_EQ(cues, 4);
    EXPECT_EQ(video->attribute("cue-count"), "4");
}

TEST(rendering, frames_only_render_when_there_is_work)
{
    browser b(chrome_profile());
    b.main().post_task(0, [&] { b.main().consume(200 * sim::ms); });
    b.run();
    EXPECT_EQ(b.painter().frames_rendered(), 0u);
}

}  // namespace
