// Unit tests for the DOM-lite: tree building, load cost models,
// serialisation and token bags.
#include <gtest/gtest.h>

#include "runtime/browser.h"
#include "sim/stats.h"

namespace {

using namespace jsk::rt;
namespace sim = jsk::sim;

TEST(dom, serialization_is_deterministic)
{
    document doc;
    auto div = std::make_shared<element>("div");
    div->set_attribute_raw("id", "x");
    div->text = "hello";
    doc.root()->add_child_raw(div);
    EXPECT_EQ(doc.serialize(), "<html><div id=\"x\">hello</div></html>");
    EXPECT_EQ(doc.element_count(), 2u);
}

TEST(dom, token_bag_counts_tags_attrs_text)
{
    document doc;
    auto a = std::make_shared<element>("a");
    a->set_attribute_raw("href", "https://x");
    a->text = "click me";
    doc.root()->add_child_raw(a);
    const auto bag = doc.token_bag();
    EXPECT_DOUBLE_EQ(bag.at("tag:a"), 1.0);
    EXPECT_DOUBLE_EQ(bag.at("attr:href"), 1.0);
    EXPECT_DOUBLE_EQ(bag.at("text:click"), 1.0);
    EXPECT_DOUBLE_EQ(jsk::sim::cosine_similarity(bag, bag), 1.0);
}

TEST(dom, script_load_time_scales_with_size)
{
    browser b(chrome_profile());
    b.net().serve(resource{"https://x/small.js", "https://x", resource_kind::script, 10'000,
                           0, 0, 0});
    b.net().serve(resource{"https://x/big.js", "https://x", resource_kind::script, 5'000'000,
                           0, 0, 0});
    auto load = [&](const std::string& url) {
        double duration = -1.0;
        b.main().post_task(0, [&] {
            auto script = b.main().apis().create_element("script");
            b.main().apis().set_attribute(script, "src", url);
            const double t0 = b.main().now_ms_raw();
            script->onload = [&, t0] { duration = b.main().now_ms_raw() - t0; };
            b.main().apis().append_child(b.doc().root(), script);
        });
        b.run();
        return duration;
    };
    const double small = load("https://x/small.js");
    const double big = load("https://x/big.js");
    EXPECT_GT(small, 0.0);
    EXPECT_GT(big, small * 10);
}

TEST(dom, image_decode_time_scales_with_pixels)
{
    browser b(chrome_profile());
    b.net().serve(resource{"https://x/lo.png", "https://x", resource_kind::image, 5'000, 64,
                           64, 0});
    b.net().serve(resource{"https://x/hi.png", "https://x", resource_kind::image, 5'000, 1024,
                           1024, 0});
    auto load = [&](const std::string& url) {
        double duration = -1.0;
        b.main().post_task(0, [&] {
            auto img = b.main().apis().create_element("img");
            b.main().apis().set_attribute(img, "src", url);
            const double t0 = b.main().now_ms_raw();
            img->onload = [&, t0] { duration = b.main().now_ms_raw() - t0; };
            b.main().apis().append_child(b.doc().root(), img);
        });
        b.run();
        return duration;
    };
    const double lo = load("https://x/lo.png");
    b.net().flush_cache();
    const double hi = load("https://x/hi.png");
    EXPECT_GT(hi, lo);
}

TEST(dom, broken_loads_fire_onerror)
{
    browser b(chrome_profile());
    std::string error;
    b.main().post_task(0, [&] {
        auto img = b.main().apis().create_element("img");
        b.main().apis().set_attribute(img, "src", "https://x/missing.png");
        img->onerror = [&](const std::string& e) { error = e; };
        b.main().apis().append_child(b.doc().root(), img);
    });
    b.run();
    EXPECT_NE(error.find("missing.png"), std::string::npos);
}

TEST(dom, attribute_roundtrip_through_api)
{
    browser b(chrome_profile());
    std::string got;
    b.main().post_task(0, [&] {
        auto div = b.main().apis().create_element("div");
        b.main().apis().set_attribute(div, "data-k", "v");
        got = b.main().apis().get_attribute(div, "data-k");
    });
    b.run();
    EXPECT_EQ(got, "v");
}

}  // namespace
