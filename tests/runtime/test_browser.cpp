// Unit tests for browser-level behaviour: reload semantics, private
// sessions, abort plumbing, error sanitisation hooks, and the task-delay
// defense hook.
#include <gtest/gtest.h>

#include "runtime/browser.h"

namespace {

using namespace jsk::rt;
namespace sim = jsk::sim;

TEST(browser, reload_aborts_inflight_fetches)
{
    browser b(chrome_profile());
    b.net().serve(resource{"https://x/slow", "https://x", resource_kind::data, 800'000, 0, 0,
                           0});
    bool aborted = false;
    b.main().post_task(0, [&] {
        b.main().apis().fetch(
            "https://x/slow", {}, nullptr,
            [&](const fetch_result& r) { aborted = r.aborted; });
        b.main().apis().set_timeout([&] { b.main().apis().reload(); }, 5 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(aborted);
}

TEST(browser, reload_emits_inflight_message_flag)
{
    browser b(chrome_profile());
    bool reload_with_inflight = false;
    b.bus().subscribe([&](const rt_event& e) {
        if (e.kind == rt_event_kind::page_reload) reload_with_inflight |= e.detail_flag;
    });
    b.register_worker_script("chatty.js", [](context& ctx) {
        for (int i = 0; i < 10; ++i) ctx.apis().post_message_to_parent(js_value{i}, {});
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("chatty.js");
        w->set_onmessage([&](const message_event&) { b.main().apis().reload(); });
    });
    b.run();
    EXPECT_TRUE(reload_with_inflight);
}

TEST(browser, private_session_cleanup_depends_on_engine_bug)
{
    browser buggy(chrome_profile());
    buggy.set_private_browsing(true);
    buggy.main().post_task(0, [&] {
        buggy.main().apis().indexeddb_put("db", "k", js_value{"v"});
    });
    buggy.run();
    buggy.end_private_session();
    EXPECT_TRUE(buggy.idb().has("db", "k"));  // the CVE-2017-7843 behaviour

    browser fixed(chrome_profile());
    fixed.bugs().idb_private_mode_persists = false;
    fixed.set_private_browsing(true);
    fixed.main().post_task(0, [&] {
        fixed.main().apis().indexeddb_put("db", "k", js_value{"v"});
    });
    fixed.run();
    fixed.end_private_session();
    EXPECT_FALSE(fixed.idb().has("db", "k"));
}

TEST(browser, abort_controller_targets_only_its_own_fetches)
{
    browser b(chrome_profile());
    b.net().serve(resource{"https://x/a", "https://x", resource_kind::data, 400'000, 0, 0, 0});
    b.net().serve(resource{"https://x/b", "https://x", resource_kind::data, 400'000, 0, 0, 0});
    abort_controller ctl;
    bool a_aborted = false;
    bool b_completed = false;
    b.main().post_task(0, [&] {
        fetch_options opts;
        opts.signal = ctl.signal;
        b.main().apis().fetch("https://x/a", opts, nullptr,
                              [&](const fetch_result& r) { a_aborted = r.aborted; });
        b.main().apis().fetch("https://x/b", {},
                              [&](const fetch_result& r) { b_completed = r.ok; }, nullptr);
        b.main().apis().set_timeout([&] { b.main().apis().abort_fetch(ctl.signal); },
                                    2 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(a_aborted);
    EXPECT_TRUE(b_completed);
}

TEST(browser, task_delay_hook_sees_labels)
{
    browser b(chrome_profile());
    std::vector<std::string> labels;
    b.set_task_delay_hook([&](sim::time_ns delay, const std::string& label) {
        labels.push_back(label);
        return delay;
    });
    b.main().post_task(0, [] {}, "my-label");
    b.run();
    ASSERT_EQ(labels.size(), 1u);
    EXPECT_EQ(labels[0], "my-label");
}

TEST(browser, error_sanitizer_applies_to_spawn_failures)
{
    browser b(chrome_profile());
    b.set_error_sanitizer([](const std::string&) { return std::string("clean"); });
    std::string got;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("https://elsewhere/missing.js");
        w->set_onerror([&](const std::string& msg) { got = msg; });
    });
    b.run();
    EXPECT_EQ(got, "clean");
}

TEST(browser, charge_outside_task_is_harmless)
{
    browser b(chrome_profile());
    b.charge(1 * sim::ms);  // no task on the stack: must not throw
    EXPECT_EQ(b.sim().now(), 0);
}

TEST(browser, page_origin_controls_cross_origin_checks)
{
    browser b(chrome_profile());
    b.set_page_origin("https://mine.example");
    EXPECT_EQ(b.main().origin(), "https://mine.example");
}

TEST(browser, emit_stamps_current_time)
{
    browser b(chrome_profile());
    sim::time_ns seen = -1;
    b.bus().subscribe([&](const rt_event& e) {
        if (e.kind == rt_event_kind::page_reload) seen = e.at;
    });
    b.main().post_task(5 * sim::ms, [&] { b.main().apis().reload(); });
    b.run();
    EXPECT_GE(seen, 5 * sim::ms);
}

}  // namespace
