// Unit tests for the execution context: timers, clocks, microtasks,
// interposition and freeze semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/browser.h"

namespace {

using namespace jsk::rt;
namespace sim = jsk::sim;

browser make_chrome() { return browser(chrome_profile()); }

TEST(context_timers, set_timeout_fires_after_delay)
{
    browser b(chrome_profile());
    double fired_at = -1.0;
    b.main().post_task(0, [&] {
        b.main().apis().set_timeout([&] { fired_at = b.main().now_ms_raw(); }, 10 * sim::ms);
    });
    b.run();
    EXPECT_GE(fired_at, 10.0);
    EXPECT_LT(fired_at, 11.0);
}

TEST(context_timers, clear_timeout_cancels)
{
    browser b(chrome_profile());
    bool fired = false;
    b.main().post_task(0, [&] {
        const auto id = b.main().apis().set_timeout([&] { fired = true; }, 5 * sim::ms);
        b.main().apis().clear_timeout(id);
    });
    b.run();
    EXPECT_FALSE(fired);
}

TEST(context_timers, nested_timeouts_clamp_to_4ms)
{
    browser b(chrome_profile());
    std::vector<double> fire_times;
    std::function<void()> chain = [&] {
        fire_times.push_back(b.main().now_ms_raw());
        if (fire_times.size() < 10) b.main().apis().set_timeout(chain, 0);
    };
    b.main().post_task(0, [&] { b.main().apis().set_timeout(chain, 0); });
    b.run();
    ASSERT_EQ(fire_times.size(), 10u);
    // Deep in the chain, consecutive fires are >= 4 ms apart.
    const double late_gap = fire_times[9] - fire_times[8];
    EXPECT_GE(late_gap, 4.0);
    // Early in the chain they may be faster.
    const double early_gap = fire_times[1] - fire_times[0];
    EXPECT_LT(early_gap, 4.0);
}

TEST(context_timers, set_interval_repeats_until_cleared)
{
    browser b(chrome_profile());
    int count = 0;
    std::int64_t id = 0;
    b.main().post_task(0, [&] {
        id = b.main().apis().set_interval(
            [&] {
                if (++count == 3) b.main().apis().clear_interval(id);
            },
            2 * sim::ms);
    });
    b.run();
    EXPECT_EQ(count, 3);
}

TEST(context_clock, performance_now_is_quantized)
{
    browser b(chrome_profile());  // 5 us precision
    double reading = -1.0;
    b.main().post_task(0, [&] {
        b.main().consume(7'777 * sim::us + 123);
        reading = b.main().apis().performance_now();
    });
    b.run();
    const double quantum_ms = 0.005;
    const double ratio = reading / quantum_ms;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-6);
    EXPECT_GT(reading, 7.0);
}

TEST(context_clock, firefox_now_is_coarser_than_chrome)
{
    browser chrome(chrome_profile());
    browser firefox(firefox_profile());
    double chrome_reading = 0.0;
    double firefox_reading = 0.0;
    chrome.main().post_task(0, [&] {
        chrome.main().consume(1'300 * sim::us);
        chrome_reading = chrome.main().apis().performance_now();
    });
    firefox.main().post_task(0, [&] {
        firefox.main().consume(1'300 * sim::us);
        firefox_reading = firefox.main().apis().performance_now();
    });
    chrome.run();
    firefox.run();
    EXPECT_NEAR(chrome_reading, 1.3, 0.01);
    EXPECT_DOUBLE_EQ(firefox_reading, 1.0);  // 1 ms quantum
}

TEST(context_microtasks, run_after_current_task_before_next)
{
    browser b(chrome_profile());
    std::vector<std::string> order;
    b.main().post_task(0, [&] {
        order.push_back("task1");
        b.main().queue_microtask([&] { order.push_back("micro"); });
    });
    b.main().post_task(0, [&] { order.push_back("task2"); });
    b.run();
    EXPECT_EQ(order, (std::vector<std::string>{"task1", "micro", "task2"}));
}

TEST(context_interpose, redefined_api_is_called_instead_of_native)
{
    browser b(chrome_profile());
    auto& apis = b.main().apis();
    auto native = apis.performance_now;  // backup-copy pattern
    int interposed_calls = 0;
    apis.performance_now = [&, native] {
        ++interposed_calls;
        return native();
    };
    b.main().post_task(0, [&] { (void)b.main().apis().performance_now(); });
    b.run();
    EXPECT_EQ(interposed_calls, 1);
}

TEST(context_interpose, locked_traps_refuse_redefinition)
{
    browser b(chrome_profile());
    context& worker_like = b.create_context("w", context_kind::worker);
    EXPECT_TRUE(worker_like.try_redefine_self_onmessage_trap([](message_cb) {}));
    worker_like.lock_traps();
    EXPECT_FALSE(worker_like.try_redefine_self_onmessage_trap([](message_cb) {}));
}

TEST(context_fetch, fetch_completes_with_resource_bytes)
{
    browser b(chrome_profile());
    b.net().serve(resource{"https://site/app.js", "https://site", resource_kind::script,
                           2048, 0, 0, 0});
    fetch_result got;
    b.main().post_task(0, [&] {
        b.main().apis().fetch("https://site/app.js", {}, [&](const fetch_result& r) { got = r; },
                              nullptr);
    });
    b.run();
    EXPECT_TRUE(got.ok);
    EXPECT_EQ(got.bytes, 2048u);
}

TEST(context_fetch, abort_before_completion_fails_the_fetch)
{
    browser b(chrome_profile());
    b.net().serve(resource{"https://site/big", "https://site", resource_kind::data,
                           1'000'000, 0, 0, 0});
    abort_controller ctl;
    fetch_result got;
    bool then_called = false;
    b.main().post_task(0, [&] {
        fetch_options opts;
        opts.signal = ctl.signal;
        b.main().apis().fetch(
            "https://site/big", opts, [&](const fetch_result&) { then_called = true; },
            [&](const fetch_result& r) { got = r; });
        b.main().apis().set_timeout([&] { b.main().apis().abort_fetch(ctl.signal); },
                                    1 * sim::ms);
    });
    b.run();
    EXPECT_FALSE(then_called);
    EXPECT_TRUE(got.aborted);
}

TEST(context_fetch, cached_fetch_is_much_faster)
{
    browser b(chrome_profile());
    b.net().serve(resource{"https://site/x", "https://site", resource_kind::data, 500'000, 0,
                           0, 0});
    double first = 0.0;
    double second = 0.0;
    b.main().post_task(0, [&] {
        const double t0 = b.main().now_ms_raw();
        b.main().apis().fetch(
            "https://site/x", {},
            [&, t0](const fetch_result&) {
                first = b.main().now_ms_raw() - t0;
                const double t1 = b.main().now_ms_raw();
                b.main().apis().fetch(
                    "https://site/x", {},
                    [&, t1](const fetch_result&) { second = b.main().now_ms_raw() - t1; },
                    nullptr);
            },
            nullptr);
    });
    b.run();
    EXPECT_GT(first, 10.0 * second);
}

TEST(context_xhr, main_thread_cross_origin_is_blocked)
{
    browser b(chrome_profile());
    b.set_page_origin("https://attacker.example");
    b.net().serve(resource{"https://victim/data", "https://victim", resource_kind::data, 100,
                           0, 0, 0});
    fetch_result got;
    b.main().post_task(0, [&] {
        b.main().apis().xhr("https://victim/data", [&](const fetch_result& r) { got = r; });
    });
    b.run();
    EXPECT_FALSE(got.ok);
    EXPECT_NE(got.error.find("same-origin"), std::string::npos);
}

TEST(context_storage, indexeddb_round_trip)
{
    browser b = make_chrome();
    b.main().post_task(0, [&] {
        b.main().apis().indexeddb_put("db", "k", js_value{"v"});
    });
    b.run();
    js_value out;
    b.main().post_task(0, [&] { out = b.main().apis().indexeddb_get("db", "k"); });
    b.run();
    EXPECT_EQ(out.as_string(), "v");
}

TEST(context_sab, shared_buffer_load_store)
{
    browser b = make_chrome();
    shared_buffer_ptr buf;
    double value = 0.0;
    b.main().post_task(0, [&] {
        buf = b.main().apis().create_shared_buffer(4);
        b.main().apis().sab_store(buf, 2, 1.5, {});
        value = b.main().apis().sab_load(buf, 2, {});
    });
    b.run();
    EXPECT_DOUBLE_EQ(value, 1.5);
    b.main().post_task(0, [&] { b.main().apis().sab_load(buf, 99, {}); });
    EXPECT_THROW(b.run(), std::out_of_range);
}

}  // namespace
