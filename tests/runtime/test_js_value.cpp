// Unit tests for the JS value model and structured clone.
#include <gtest/gtest.h>

#include "runtime/js_value.h"

namespace {

using namespace jsk::rt;

TEST(js_value, defaults_to_undefined)
{
    js_value v;
    EXPECT_TRUE(v.is_undefined());
    EXPECT_EQ(v.to_string(), "undefined");
}

TEST(js_value, primitives_round_trip)
{
    EXPECT_TRUE(js_value{nullptr}.is_null());
    EXPECT_TRUE(js_value{true}.as_bool());
    EXPECT_DOUBLE_EQ(js_value{3.5}.as_number(), 3.5);
    EXPECT_EQ(js_value{42}.as_number(), 42.0);
    EXPECT_EQ(js_value{"hi"}.as_string(), "hi");
}

TEST(js_value, object_get_set)
{
    js_value obj = make_object({{"a", 1}, {"b", "x"}});
    EXPECT_EQ(obj.get("a").as_number(), 1.0);
    EXPECT_EQ(obj.get("b").as_string(), "x");
    EXPECT_TRUE(obj.get("missing").is_undefined());
    obj.set("c", true);
    EXPECT_TRUE(obj.get("c").as_bool());
}

TEST(js_value, get_on_non_object_is_undefined)
{
    EXPECT_TRUE(js_value{1}.get("x").is_undefined());
}

TEST(js_value, set_on_non_object_throws)
{
    js_value v{1};
    EXPECT_THROW(v.set("x", 1), std::logic_error);
}

TEST(js_value, to_string_is_deterministic_json_ish)
{
    const js_value obj = make_object({{"b", 2}, {"a", js_value{js_array{1, "x"}}}});
    EXPECT_EQ(obj.to_string(), "{\"a\":[1,\"x\"],\"b\":2}");
}

TEST(js_value, byte_size_counts_nested_content)
{
    auto buf = std::make_shared<array_buffer>();
    buf->data.assign(100, 0);
    const js_value v = make_object({{"k", js_value{buf}}});
    EXPECT_GE(v.byte_size(), 100u);
}

TEST(structured_clone, deep_copies_objects)
{
    js_value original = make_object({{"list", js_value{js_array{1, 2}}}});
    js_value copy = structured_clone(original);
    copy.get("list").as_array().push_back(3);
    EXPECT_EQ(original.get("list").as_array().size(), 2u);
    EXPECT_EQ(copy.get("list").as_array().size(), 3u);
}

TEST(structured_clone, copies_array_buffers_by_default)
{
    auto buf = std::make_shared<array_buffer>();
    buf->data = {1, 2, 3};
    const js_value copy = structured_clone(js_value{buf});
    EXPECT_FALSE(buf->neutered);
    EXPECT_NE(copy.as_array_buffer(), buf);
    EXPECT_EQ(copy.as_array_buffer()->data, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(structured_clone, transfer_neuters_source)
{
    auto buf = std::make_shared<array_buffer>();
    buf->data = {9, 9};
    const js_value copy = structured_clone(js_value{buf}, {buf});
    EXPECT_TRUE(buf->neutered);
    EXPECT_TRUE(buf->data.empty());
    EXPECT_EQ(copy.as_array_buffer()->data.size(), 2u);
}

TEST(structured_clone, cloning_neutered_buffer_throws)
{
    auto buf = std::make_shared<array_buffer>();
    buf->neutered = true;
    EXPECT_THROW(structured_clone(js_value{buf}), std::runtime_error);
}

TEST(structured_clone, shared_buffers_are_shared_not_copied)
{
    auto sab = std::make_shared<shared_buffer>();
    sab->slots = {1.0};
    const js_value copy = structured_clone(js_value{sab});
    EXPECT_EQ(copy.as_shared_buffer(), sab);
    copy.as_shared_buffer()->slots[0] = 7.0;
    EXPECT_DOUBLE_EQ(sab->slots[0], 7.0);
}

}  // namespace
