// Unit + integration tests for worker lifecycle and messaging.
#include <gtest/gtest.h>

#include "faults/injector.h"
#include "faults/plan.h"
#include "runtime/browser.h"

namespace {

using namespace jsk::rt;
namespace sim = jsk::sim;

TEST(workers, spawn_runs_registered_script_on_worker_thread)
{
    browser b(chrome_profile());
    sim::thread_id worker_thread = sim::no_thread;
    b.register_worker_script("worker.js", [&](context& ctx) {
        worker_thread = ctx.owner().sim().current_thread();
        EXPECT_EQ(ctx.kind(), context_kind::worker);
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("worker.js"); });
    b.run();
    EXPECT_NE(worker_thread, sim::no_thread);
    EXPECT_NE(worker_thread, b.main().thread());
}

TEST(workers, round_trip_message)
{
    browser b(chrome_profile());
    b.register_worker_script("echo.js", [](context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const message_event& e) {
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });
    std::string got;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("echo.js");
        w->set_onmessage([&](const message_event& e) { got = e.data.as_string(); });
        w->post_message(js_value{"ping"});
    });
    b.run();
    EXPECT_EQ(got, "ping");
}

TEST(workers, worker_runs_in_parallel_with_main)
{
    // A long main-thread task must not delay worker computation (true
    // parallelism — what Chrome Zero's polyfill sacrifices).
    browser b(chrome_profile());
    double worker_done_at = -1.0;
    b.register_worker_script("busy.js", [&](context& ctx) {
        ctx.consume(5 * sim::ms);
        worker_done_at = ctx.now_ms_raw();
    });
    b.main().post_task(0, [&] {
        b.main().apis().create_worker("busy.js");
        b.main().consume(500 * sim::ms);  // main is busy for half a second
    });
    b.run();
    EXPECT_GT(worker_done_at, 0.0);
    EXPECT_LT(worker_done_at, 100.0);  // finished long before main got free
}

TEST(workers, polyfill_workers_share_the_main_thread)
{
    browser b(chrome_profile());
    b.set_polyfill_workers(true);
    double worker_done_at = -1.0;
    b.register_worker_script("busy.js", [&](context& ctx) {
        ctx.consume(5 * sim::ms);
        worker_done_at = ctx.now_ms_raw();
    });
    b.main().post_task(0, [&] {
        b.main().apis().create_worker("busy.js");
        b.main().consume(500 * sim::ms);
    });
    b.run();
    EXPECT_GT(worker_done_at, 500.0);  // had to wait for the main thread
}

TEST(workers, terminate_stops_delivery)
{
    browser b(chrome_profile());
    int received = 0;
    b.register_worker_script("counter.js", [&](context& ctx) {
        ctx.apis().set_self_onmessage([&](const message_event&) { ++received; });
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("counter.js");
        w->post_message(js_value{1});
        b.main().apis().set_timeout(
            [&, w] {
                w->terminate();
                EXPECT_FALSE(w->alive());
                w->post_message(js_value{2});  // dropped
            },
            50 * sim::ms);
    });
    b.run();
    EXPECT_EQ(received, 1);
}

TEST(workers, self_close_emits_event_and_stops_worker)
{
    browser b(chrome_profile());
    bool closed_event = false;
    b.bus().subscribe([&](const rt_event& e) {
        if (e.kind == rt_event_kind::worker_self_closed) closed_event = true;
    });
    b.register_worker_script("quit.js", [](context& ctx) { ctx.apis().close_self(); });
    b.main().post_task(0, [&] { b.main().apis().create_worker("quit.js"); });
    b.run();
    EXPECT_TRUE(closed_event);
}

TEST(workers, missing_script_fires_onerror)
{
    browser b(chrome_profile());
    std::string error;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("nope.js");
        w->set_onerror([&](const std::string& msg) { error = msg; });
    });
    b.run();
    EXPECT_NE(error.find("nope.js"), std::string::npos);
}

TEST(workers, error_sanitizer_scrubs_messages)
{
    browser b(chrome_profile());
    b.set_error_sanitizer([](const std::string&) { return std::string("Script error."); });
    std::string error;
    bool leak_flag = false;
    b.bus().subscribe([&](const rt_event& e) {
        if (e.kind == rt_event_kind::worker_error_event && e.detail_flag) leak_flag = true;
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("nope.js");
        w->set_onerror([&](const std::string& msg) { error = msg; });
    });
    b.run();
    EXPECT_EQ(error, "Script error.");
    EXPECT_FALSE(leak_flag);
}

TEST(workers, transferable_moves_buffer_to_parent)
{
    browser b(chrome_profile());
    b.register_worker_script("transfer.js", [](context& ctx) {
        auto buf = std::make_shared<array_buffer>();
        buf->data = {1, 2, 3, 4};
        ctx.apis().post_message_to_parent(js_value{buf}, {buf});
        EXPECT_TRUE(buf->neutered);
    });
    std::size_t received_bytes = 0;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("transfer.js");
        w->set_onmessage([&](const message_event& e) {
            received_bytes = e.data.as_array_buffer()->data.size();
        });
    });
    b.run();
    EXPECT_EQ(received_bytes, 4u);
}

TEST(workers, worker_messages_flow_while_main_is_busy)
{
    // The Listing-1 pattern: a worker floods postMessage while the main
    // thread runs a long operation; deliveries queue and drain afterwards.
    browser b(chrome_profile());
    b.register_worker_script("flood.js", [](context& ctx) {
        for (int i = 0; i < 50; ++i) ctx.apis().post_message_to_parent(js_value{i}, {});
    });
    std::vector<double> delivery_times;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("flood.js");
        w->set_onmessage([&](const message_event&) {
            delivery_times.push_back(b.main().now_ms_raw());
        });
        b.main().consume(80 * sim::ms);
    });
    b.run();
    ASSERT_EQ(delivery_times.size(), 50u);
    EXPECT_GE(delivery_times.front(), 80.0);  // queued behind the busy main thread
}

TEST(workers, import_scripts_runs_same_origin_script)
{
    browser b(chrome_profile());
    b.set_page_origin("https://site");
    b.net().serve(resource{"https://site/lib.js", "https://site", resource_kind::script, 100,
                           0, 0, 0});
    bool lib_ran = false;
    b.register_worker_script("lib.js", [&](context&) { lib_ran = true; });
    // importScripts resolves registered bodies by URL:
    b.register_worker_script("https://site/lib.js", [&](context&) { lib_ran = true; });
    b.register_worker_script("main_worker.js", [](context& ctx) {
        ctx.apis().import_scripts({"https://site/lib.js"});
    });
    b.main().post_task(0, [&] { b.main().apis().create_worker("main_worker.js"); });
    b.run();
    EXPECT_TRUE(lib_ran);
}

// --- terminate() semantics (see native_worker::terminate doc block) ----------

TEST(worker_terminate, in_flight_task_completes_but_queued_messages_drop)
{
    browser b(chrome_profile());
    bool long_task_finished = false;
    int deliveries = 0;
    b.register_worker_script("busy.js", [&](context& ctx) {
        ctx.apis().set_self_onmessage([&](const message_event&) {
            ++deliveries;
            ctx.consume(30 * sim::ms);  // a long onmessage handler
            long_task_finished = true;
        });
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("busy.js");
        // First message arrives after load and occupies the worker ~30 ms...
        b.main().apis().set_timeout([w] { w->post_message(js_value{"m1"}, {}); },
                                    2 * sim::ms);
        // ...the second queues behind that busy thread...
        b.main().apis().set_timeout([w] { w->post_message(js_value{"m2"}, {}); },
                                    4 * sim::ms);
        // ...and terminate() lands while the handler is still charged.
        b.main().apis().set_timeout([w] { w->terminate(); }, 6 * sim::ms);
    });
    b.run();
    EXPECT_TRUE(long_task_finished);  // in-flight work runs to completion
    EXPECT_EQ(deliveries, 1);         // the queued second delivery is dropped
    EXPECT_EQ(b.messages_in_flight(), 0);
}

TEST(worker_terminate, is_idempotent_and_undelivered_parent_messages_drop)
{
    browser b(chrome_profile());
    b.register_worker_script("chatty.js", [](context& ctx) {
        for (int i = 0; i < 10; ++i) ctx.apis().post_message_to_parent(js_value{i}, {});
    });
    int received = 0;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("chatty.js");
        w->set_onmessage([&](const message_event&) { ++received; });
        // Stay busy past the worker's sends, then terminate twice: deliveries
        // queued for the main thread but not yet run must not fire afterwards.
        b.main().consume(30 * sim::ms);
        w->terminate();
        w->terminate();
    });
    b.run();
    EXPECT_EQ(received, 0);
    EXPECT_EQ(b.messages_in_flight(), 0);
}

TEST(worker_faults, spawn_failure_fires_onerror_and_runs_no_script)
{
    browser b(chrome_profile());
    jsk::faults::plan p;
    p.worker_spawn_fail_bp = 10'000;
    jsk::faults::injector inj{p};
    b.set_fault_injector(&inj);
    bool script_ran = false;
    b.register_worker_script("w.js", [&](context&) { script_ran = true; });
    std::string error;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("w.js");
        w->set_onerror([&](const std::string& msg) { error = msg; });
        w->post_message(js_value{"lost"}, {});
    });
    b.run();
    EXPECT_FALSE(script_ran);
    EXPECT_NE(error.find("spawn failure"), std::string::npos) << error;
    EXPECT_EQ(b.messages_in_flight(), 0);  // buffered messages settled
    EXPECT_EQ(inj.worker_spawn_fails(), 1u);
}

TEST(worker_faults, mid_task_crash_fires_onerror_and_frees_inflight_fetches)
{
    browser b(chrome_profile());
    jsk::faults::plan p;
    p.worker_crash_bp = 10'000;
    p.worker_crash_after = 10 * sim::ms;
    jsk::faults::injector inj{p};
    b.set_fault_injector(&inj);
    b.net().serve(resource{"https://site/slow", "https://site", resource_kind::data,
                           5'000'000, 0, 0, 0});
    bool fetch_completed = false;
    b.register_worker_script("fetcher.js", [&](context& ctx) {
        ctx.apis().fetch("https://site/slow", {},
                         [&](const fetch_result&) { fetch_completed = true; }, nullptr);
    });
    std::string error;
    std::size_t freed_events = 0;
    b.bus().subscribe([&](const rt_event& ev) {
        if (ev.kind == rt_event_kind::fetch_freed) ++freed_events;
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("fetcher.js");
        w->set_onerror([&](const std::string& msg) { error = msg; });
    });
    b.run();
    EXPECT_NE(error.find("worker crashed"), std::string::npos) << error;
    EXPECT_FALSE(fetch_completed);  // the crash freed it (CVE-2018-5092 window)
    EXPECT_EQ(freed_events, 1u);
    EXPECT_EQ(inj.worker_crashes(), 1u);
    EXPECT_EQ(b.messages_in_flight(), 0);
}

TEST(worker_faults, delayed_termination_still_tears_the_worker_down)
{
    browser b(chrome_profile());
    jsk::faults::plan p;
    p.worker_termination_delay = 8 * sim::ms;
    jsk::faults::injector inj{p};
    b.set_fault_injector(&inj);
    int deliveries = 0;
    b.register_worker_script("echo.js", [&](context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const message_event& e) {
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("echo.js");
        w->set_onmessage([&](const message_event&) { ++deliveries; });
        b.main().apis().set_timeout([w] { w->terminate(); }, 20 * sim::ms);
        // Posted after terminate() was requested but before the delayed
        // teardown lands: must not leak.
        b.main().apis().set_timeout(
            [w] { w->post_message(js_value{"late"}, {}); }, 22 * sim::ms);
    });
    b.run_until(5 * sim::sec);
    EXPECT_EQ(b.messages_in_flight(), 0);
    EXPECT_EQ(deliveries, 0);
}

}  // namespace
