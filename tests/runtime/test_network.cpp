// Unit tests for the network/cache model and fetch records.
#include <gtest/gtest.h>

#include "runtime/api.h"
#include "runtime/network.h"

namespace {

using namespace jsk::rt;
namespace sim = jsk::sim;

class network_fixture : public ::testing::Test {
protected:
    browser_profile profile = chrome_profile();
    network net{profile};
};

TEST_F(network_fixture, latency_scales_with_size_on_miss)
{
    net.serve(resource{"u1", "o", resource_kind::data, 1'000, 0, 0, 0});
    net.serve(resource{"u2", "o", resource_kind::data, 1'000'000, 0, 0, 0});
    const sim::time_ns small = net.request_latency("u1");
    const sim::time_ns big = net.request_latency("u2");
    EXPECT_GT(big, small);
    EXPECT_GT(big - small, 100 * sim::ms / 1000 * 500);  // bandwidth term dominates
}

TEST_F(network_fixture, second_request_hits_cache)
{
    net.serve(resource{"u", "o", resource_kind::data, 500'000, 0, 0, 0});
    const sim::time_ns miss = net.request_latency("u");
    const sim::time_ns hit = net.request_latency("u");
    EXPECT_GT(miss, 10 * hit);
    EXPECT_TRUE(net.cached("u"));
    net.evict("u");
    EXPECT_FALSE(net.cached("u"));
    EXPECT_GT(net.request_latency("u"), 10 * hit);
}

TEST_F(network_fixture, unknown_urls_act_as_small_documents)
{
    const sim::time_ns latency = net.request_latency("https://nowhere/404");
    EXPECT_GT(latency, profile.net_rtt - 1);
}

TEST_F(network_fixture, server_latency_adds_to_misses)
{
    net.serve(resource{"slow", "o", resource_kind::data, 10, 0, 0, 500 * sim::ms});
    EXPECT_GT(net.request_latency("slow"), 500 * sim::ms);
}

TEST_F(network_fixture, fetch_records_track_ownership_and_freeing)
{
    auto signal = std::make_shared<abort_signal_state>();
    auto& rec = net.start_fetch("u", 3, signal);
    EXPECT_EQ(net.find_fetch(rec.id), &rec);
    EXPECT_EQ(net.inflight_fetches().size(), 1u);
    EXPECT_EQ(net.fetches_with(signal).size(), 1u);

    const auto freed = net.free_fetches_of(3);
    ASSERT_EQ(freed.size(), 1u);
    EXPECT_TRUE(net.find_fetch(freed[0])->freed);

    // Completed fetches are not freed again.
    auto& rec2 = net.start_fetch("v", 3, nullptr);
    rec2.completed = true;
    EXPECT_TRUE(net.free_fetches_of(3).empty());
}

TEST_F(network_fixture, prime_and_flush_cache)
{
    net.prime_cache("warm");
    EXPECT_TRUE(net.cached("warm"));
    net.flush_cache();
    EXPECT_FALSE(net.cached("warm"));
}

TEST_F(network_fixture, fetch_records_start_without_an_error)
{
    auto& rec = net.start_fetch("u", 1, nullptr);
    EXPECT_FALSE(rec.failed);
    EXPECT_EQ(rec.error, fetch_error::none);
}

TEST(fetch_errors, to_string_names_every_kind)
{
    EXPECT_STREQ(to_string(fetch_error::none), "none");
    EXPECT_STREQ(to_string(fetch_error::aborted), "aborted");
    EXPECT_STREQ(to_string(fetch_error::timeout), "timeout");
    EXPECT_STREQ(to_string(fetch_error::reset), "reset");
    EXPECT_STREQ(to_string(fetch_error::partial), "partial");
    EXPECT_STREQ(to_string(fetch_error::blocked), "blocked");
}

TEST(fetch_errors, only_transient_failures_are_retryable)
{
    const auto result_with = [](fetch_error kind) {
        fetch_result r;
        r.kind = kind;
        return r;
    };
    EXPECT_TRUE(result_with(fetch_error::timeout).retryable());
    EXPECT_TRUE(result_with(fetch_error::reset).retryable());
    EXPECT_TRUE(result_with(fetch_error::partial).retryable());
    EXPECT_FALSE(result_with(fetch_error::none).retryable());
    EXPECT_FALSE(result_with(fetch_error::aborted).retryable());
    EXPECT_FALSE(result_with(fetch_error::blocked).retryable());
}

}  // namespace
