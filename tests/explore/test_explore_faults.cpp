// Satellite of the jsk::faults PR: schedule record/replay composes with
// fault injection. A run under an active fault plan records its scheduling
// decision string; replaying that string with a fresh injector built from
// the same plan reproduces the run observation-for-observation — (seed,
// plan, decision string) is a complete witness for a chaotic run.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "faults/injector.h"
#include "faults/plan.h"
#include "runtime/browser.h"
#include "sim/explore.h"
#include "workloads/random_program.h"

namespace {

namespace sim = jsk::sim;
namespace explore = jsk::sim::explore;
namespace rt = jsk::rt;
namespace faults = jsk::faults;
namespace workloads = jsk::workloads;

struct faulted_run {
    std::string observations;
    explore::schedule decisions;
    std::uint64_t faults_injected = 0;
};

faulted_run run_program(std::uint64_t program_seed, const faults::plan& p,
                        explore::controller& ctl)
{
    rt::browser b(rt::chrome_profile(), 17);
    faults::injector inj{p};
    b.set_fault_injector(&inj);
    ctl.attach(b.sim());
    auto log = std::make_shared<workloads::observation_log>();
    workloads::install_random_program(b, program_seed, log);
    b.run_until(60 * sim::sec);
    faulted_run out;
    out.observations = log->str();
    out.decisions = ctl.decisions();
    out.faults_injected = inj.injected();
    return out;
}

TEST(explore_faults, decision_string_replays_a_faulted_run)
{
    // Saturated (but non-destructive) plan: every postMessage is delayed and
    // every fetch latency spikes, so any program that communicates at all
    // experiences injected faults.
    faults::plan p;
    p.seed = 11;
    p.msg_delay_bp = 10'000;
    p.fetch_spike_bp = 10'000;

    // Not every random program posts messages or fetches; scan a few seeds
    // for one whose recording actually exercised the injector.
    std::uint64_t program_seed = 0;
    faulted_run recorded;
    for (std::uint64_t candidate = 1; candidate <= 12; ++candidate) {
        explore::controller walk({}, explore::controller::tail_policy::random, 23);
        recorded = run_program(candidate, p, walk);
        if (recorded.faults_injected > 0) {
            program_seed = candidate;
            break;
        }
    }
    ASSERT_GT(recorded.faults_injected, 0u) << "no sampled program fired the plan";

    // Replay the decision string (round-tripped through its textual form)
    // with a first-tail controller and a fresh injector.
    const auto parsed = explore::schedule::parse(recorded.decisions.str());
    ASSERT_TRUE(parsed.has_value());
    explore::controller replay(*parsed, explore::controller::tail_policy::first, 0);
    const faulted_run replayed = run_program(program_seed, p, replay);

    EXPECT_EQ(replayed.observations, recorded.observations);
    EXPECT_EQ(replayed.faults_injected, recorded.faults_injected);
}

TEST(explore_faults, same_schedule_different_plan_diverges)
{
    // The converse guard: the fault plan is part of the witness. Replaying
    // the same decisions with a different plan must not silently reproduce
    // the original run.
    explore::controller walk({}, explore::controller::tail_policy::random, 23);
    const faulted_run chaotic = run_program(7, faults::plan::full_chaos(11), walk);

    explore::controller again({}, explore::controller::tail_policy::random, 23);
    const faulted_run calm = run_program(7, faults::plan::perturb_only(3), again);

    EXPECT_NE(chaotic.observations, calm.observations);
}

TEST(explore_faults, random_walks_with_faults_are_seed_deterministic)
{
    const faults::plan p = faults::plan::channel_chaos(5);
    explore::controller a({}, explore::controller::tail_policy::random, 99);
    explore::controller b({}, explore::controller::tail_policy::random, 99);
    const faulted_run ra = run_program(3, p, a);
    const faulted_run rb = run_program(3, p, b);
    EXPECT_EQ(ra.observations, rb.observations);
    EXPECT_EQ(ra.decisions, rb.decisions);
    EXPECT_EQ(ra.faults_injected, rb.faults_injected);
}

}  // namespace
