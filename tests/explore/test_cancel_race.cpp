// §III-D2 cancellation racing confirmation, driven through the schedule
// explorer instead of a fixed order. The three cases:
//   1. cancel before the native trigger confirms  -> event discarded
//   2. cancel after confirm, before dispatch      -> event discarded
//   3. cancel after dispatch                      -> cancel ignored, ran
// The explorer makes the confirm and cancel tasks co-enabled and enumerates
// every interleaving; each schedule must land in exactly one case with the
// matching observable outcome.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "kernel/kernel.h"
#include "sim/explore.h"

namespace {

using namespace jsk::kernel;
namespace rt = jsk::rt;
namespace sim = jsk::sim;
namespace explore = jsk::sim::explore;
using sim::ms;

/// One controlled run where a confirm and a cancel of the same event are
/// co-enabled. With `blocked_head`, an earlier-predicted pending event keeps
/// the dispatcher from running the victim even once confirmed (case 2
/// becomes reachable; case 3 becomes unreachable).
struct race_observation {
    bool cancel_result = false;
    bool ran = false;
    bool operator<(const race_observation& other) const
    {
        return std::pair(cancel_result, ran) < std::pair(other.cancel_result, other.ran);
    }
};

race_observation run_race(explore::controller& ctl, bool blocked_head)
{
    rt::browser b(rt::chrome_profile());
    ctl.attach(b.sim());
    auto k = kernel::boot(b);

    race_observation seen;
    auto victim = std::make_shared<std::uint64_t>(0);
    b.main().post_task(0, [&, victim] {
        if (blocked_head) {
            // Registered but never confirmed within the race window: the
            // dispatcher's predicted-order frontier stalls at 0.5.
            k->sched().register_at(kevent_type::generic, 0.5, "head", [] {});
        }
        *victim = k->sched().register_at(kevent_type::generic, 1.0, "victim",
                                         [&seen] { seen.ran = true; });
    });
    // Both at the same virtual instant on the main thread: the explorer
    // decides which one the engine services first.
    b.main().post_task(5 * ms, [&, victim] { k->sched().confirm(*victim); }, "confirm");
    b.main().post_task(5 * ms,
                       [&, victim] { seen.cancel_result = k->sched().cancel(*victim); },
                       "cancel");
    b.run();
    return seen;
}

TEST(cancel_race, every_interleaving_is_consistent_and_all_cases_are_reached)
{
    std::set<race_observation> outcomes;
    const auto result = explore::explore_dfs([&](explore::controller& ctl) {
        const race_observation seen = run_race(ctl, /*blocked_head=*/false);
        outcomes.insert(seen);
        // Per-schedule invariant: the callback ran iff the cancel lost the
        // race (§III-D2 case 3 is the only way cancel reports failure).
        EXPECT_EQ(seen.ran, !seen.cancel_result);
        return explore::run_outcome{};
    });
    EXPECT_TRUE(result.exhausted);
    EXPECT_GE(result.schedules_run, 3u);

    // Coverage: dispatch runs as its own macrotask, so the explorer reaches
    // every §III-D2 case here:
    //   cancel, confirm            -> case 1: cancel succeeded, never ran
    //   confirm, cancel, dispatch  -> case 2: cancelled while ready, never ran
    //   confirm, dispatch, cancel  -> case 3: cancel ignored, ran
    // Cases 1 and 2 share one observable (discarded); case 3 the other.
    EXPECT_TRUE(outcomes.count(race_observation{true, false}))
        << "cases 1/2 (cancel wins the race) were never explored";
    EXPECT_TRUE(outcomes.count(race_observation{false, true}))
        << "case 3 (cancel-after-dispatch) was never explored";
    EXPECT_EQ(outcomes.size(), 2u);
}

TEST(cancel_race, blocked_head_makes_every_schedule_discard_the_event)
{
    std::set<race_observation> outcomes;
    const auto result = explore::explore_dfs([&](explore::controller& ctl) {
        const race_observation seen = run_race(ctl, /*blocked_head=*/true);
        outcomes.insert(seen);
        return explore::run_outcome{seen.ran,
                                    "victim dispatched past an unconfirmed head"};
    });
    EXPECT_TRUE(result.exhausted) << "a schedule dispatched the blocked victim: "
                                  << result.failure_detail;
    EXPECT_FALSE(result.failing.has_value());
    EXPECT_GE(result.schedules_run, 2u);

    // Whichever side wins the race, the event is discarded (case 1 when the
    // cancel runs first, case 2 — confirmed but not dispatched — when the
    // confirm does), and the cancel always reports success.
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes.begin()->cancel_result);
    EXPECT_FALSE(outcomes.begin()->ran);
}

}  // namespace
