// Exhaustive schedule sweeps — the full Table I CVE matrix under random
// schedules and a broad journal-invariance audit. These are deliberately
// heavy, so they self-skip unless JSK_EXPLORE_EXHAUSTIVE is set; run them
// via the `explore` ctest label:
//
//   JSK_EXPLORE_EXHAUSTIVE=1 ctest -L explore --output-on-failure
#include <gtest/gtest.h>

#include <cstdlib>

#include "attacks/explore_sweep.h"
#include "defenses/schedule_audit.h"

namespace {

bool exhaustive_enabled() { return std::getenv("JSK_EXPLORE_EXHAUSTIVE") != nullptr; }

TEST(explore_sweep, full_cve_matrix_under_random_schedules)
{
    if (!exhaustive_enabled()) {
        GTEST_SKIP() << "set JSK_EXPLORE_EXHAUSTIVE=1 (or use `ctest -L explore`)";
    }
    jsk::sim::explore::options opt;
    opt.seed = 101;
    const auto rows = jsk::attacks::explore_cve_matrix(/*walks_per_cell=*/16, opt);
    ASSERT_EQ(rows.size(), 12u);
    for (const auto& row : rows) {
        EXPECT_GT(row.plain_triggered, 0u)
            << row.cve << ": no plain-browser schedule triggered the state machine";
        EXPECT_EQ(row.kernel_triggered, 0u)
            << row.cve << " triggered under a JSKernel schedule"
            << (row.witness ? " (plain witness " + row.witness->str() + ")" : "");
    }
}

TEST(explore_sweep, journal_invariance_across_many_programs_and_schedules)
{
    if (!exhaustive_enabled()) {
        GTEST_SKIP() << "set JSK_EXPLORE_EXHAUSTIVE=1 (or use `ctest -L explore`)";
    }
    for (std::uint64_t program_seed = 1; program_seed <= 20; ++program_seed) {
        const auto report =
            jsk::defenses::audit_schedule_invariance(program_seed, /*schedules=*/50,
                                                     /*walk_seed=*/program_seed * 1000);
        EXPECT_TRUE(report.identical)
            << "program seed " << program_seed << ": " << report.detail
            << "\nfailing schedule: "
            << (report.failing ? report.failing->str() : std::string("<none>"));
    }
}

}  // namespace
