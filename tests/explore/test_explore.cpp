// The schedule-exploration engine (sim/explore.h), unit level plus the
// acceptance sweep: random walks find plain-browser schedules that trigger
// the CVE state machines, no explored JSKernel schedule triggers them or
// perturbs the kernel journal, and failing schedules replay bit-for-bit
// from their decision strings after shrinking.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "attacks/explore_sweep.h"
#include "defenses/schedule_audit.h"
#include "sim/explore.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace {

namespace sim = jsk::sim;
namespace explore = jsk::sim::explore;
using sim::ms;

// --- decision strings ----------------------------------------------------------

TEST(schedule, decision_string_round_trips)
{
    explore::schedule s;
    s.choices = {0, 2, 10, 35, 36, 407, 1};
    EXPECT_EQ(s.str(), "02az{36}{407}1");
    const auto parsed = explore::schedule::parse(s.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
}

TEST(schedule, parse_rejects_malformed_strings)
{
    EXPECT_FALSE(explore::schedule::parse("0 1").has_value());
    EXPECT_FALSE(explore::schedule::parse("{12").has_value());
    EXPECT_FALSE(explore::schedule::parse("{}").has_value());
    EXPECT_FALSE(explore::schedule::parse("{1x}").has_value());
    EXPECT_TRUE(explore::schedule::parse("").has_value());
}

TEST(schedule, trim_and_preemptions)
{
    explore::schedule s;
    s.choices = {0, 1, 0, 2, 0, 0};
    EXPECT_EQ(s.preemptions(), 2u);
    s.trim();
    EXPECT_EQ(s.choices, (std::vector<std::uint32_t>{0, 1, 0, 2}));
}

// --- DFS over a two-task race --------------------------------------------------

/// Two co-enabled tasks on different threads append their tags; the explored
/// order is the observable.
explore::run_outcome order_probe(explore::controller& ctl, std::string* order)
{
    sim::simulation s;
    const auto ta = s.create_thread("a");
    const auto tb = s.create_thread("b");
    ctl.attach(s);
    order->clear();
    s.post(ta, 5 * ms, [order] { order->push_back('A'); }, "A");
    s.post(tb, 5 * ms, [order] { order->push_back('B'); }, "B");
    s.run();
    return {};
}

TEST(explore_dfs, explores_both_orders_of_a_two_task_race)
{
    std::set<std::string> orders;
    std::string order;
    const auto result = explore::explore_dfs([&](explore::controller& ctl) {
        auto out = order_probe(ctl, &order);
        orders.insert(order);
        return out;
    });
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(result.schedules_run, 2u);
    EXPECT_EQ(orders, (std::set<std::string>{"AB", "BA"}));
}

TEST(explore_dfs, preemption_budget_bounds_the_tree)
{
    // Six co-enabled tasks pairwise racing: budget 0 leaves only the default
    // schedule.
    std::uint64_t runs_seen = 0;
    explore::options opt;
    opt.preemption_budget = 0;
    const auto result = explore::explore_dfs(
        [&](explore::controller& ctl) {
            sim::simulation s;
            const auto t0 = s.create_thread("a");
            const auto t1 = s.create_thread("b");
            ctl.attach(s);
            for (int i = 0; i < 3; ++i) {
                s.post(t0, 5 * ms, [] {});
                s.post(t1, 5 * ms, [] {});
            }
            s.run();
            ++runs_seen;
            return explore::run_outcome{};
        },
        opt);
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(result.schedules_run, 1u);
    EXPECT_EQ(runs_seen, 1u);
    EXPECT_GT(result.pruned, 0u);
}

TEST(explore_dfs, dpor_prunes_independent_pairs_but_not_communicating_ones)
{
    // Independent: the two racers never post — one order suffices.
    explore::options opt;
    opt.dpor = true;
    std::string order;
    const auto independent = explore::explore_dfs(
        [&](explore::controller& ctl) { return order_probe(ctl, &order); }, opt);
    EXPECT_TRUE(independent.exhausted);
    EXPECT_EQ(independent.schedules_run, 1u);
    EXPECT_EQ(independent.pruned, 1u);

    // Communicating: A posts onto B's thread — the A/B swap must be
    // explored (and A's posted task adds a branching point of its own once
    // it lands co-enabled with B, hence three schedules, not two).
    const auto communicating = explore::explore_dfs(
        [&](explore::controller& ctl) {
            sim::simulation s;
            const auto ta = s.create_thread("a");
            const auto tb = s.create_thread("b");
            ctl.attach(s);
            s.post(ta, 5 * ms, [&s, tb] { s.post(tb, 0, [] {}); }, "A");
            s.post(tb, 5 * ms, [] {}, "B");
            s.run();
            return explore::run_outcome{};
        },
        opt);
    EXPECT_TRUE(communicating.exhausted);
    EXPECT_EQ(communicating.schedules_run, 3u);
}

// --- invariant (c): causality on every schedule --------------------------------

TEST(explore_invariants, causality_holds_on_every_schedule_even_with_window)
{
    // Cross-thread message chains under a 2 ms commutativity window: on every
    // explored schedule, no task may start before it was ready.
    for (const sim::time_ns window : {sim::time_ns{0}, 2 * ms}) {
        explore::options opt;
        opt.window = window;
        opt.max_schedules = 24;
        opt.seed = 99;
        const auto result = explore::explore_random(
            [](explore::controller& ctl) {
                sim::simulation s;
                std::vector<sim::thread_id> threads;
                for (int i = 0; i < 3; ++i) {
                    threads.push_back(s.create_thread("t" + std::to_string(i)));
                }
                bool violated = false;
                s.add_task_observer([&](const sim::task_info& info) {
                    if (info.start < info.ready_at) violated = true;
                });
                ctl.attach(s);
                for (int i = 0; i < 12; ++i) {
                    const auto target = threads[static_cast<std::size_t>(i % 3)];
                    s.post(target, (i % 4) * ms, [&s, &threads, i] {
                        s.consume(500 * sim::us);
                        // Relay a "message" onto the next thread at now().
                        s.post(threads[static_cast<std::size_t>((i + 1) % 3)], s.now(),
                               [&s] { s.consume(100 * sim::us); });
                    });
                }
                s.run();
                return explore::run_outcome{violated, "task started before ready_at"};
            },
            opt);
        EXPECT_FALSE(result.failing.has_value()) << result.failure_detail;
        EXPECT_EQ(result.schedules_run, opt.max_schedules);
    }
}

// --- planted race: find, shrink, replay ----------------------------------------

/// A benign pile of decision points plus one planted ordering bug: the
/// invariant "W runs before R" only breaks when the hook flips their order.
explore::run_outcome planted_race(explore::controller& ctl)
{
    sim::simulation s;
    const auto t0 = s.create_thread("main");
    const auto t1 = s.create_thread("worker");
    ctl.attach(s);
    // Decision-point chaff before and alongside the race.
    for (int i = 0; i < 4; ++i) {
        s.post(t0, 1 * ms, [&s] { s.consume(10 * sim::us); });
        s.post(t1, 1 * ms, [&s] { s.consume(10 * sim::us); });
    }
    bool write_done = false;
    bool read_raced = false;
    s.post(t0, 8 * ms, [&write_done] { write_done = true; }, "W");
    s.post(t1, 8 * ms, [&] { read_raced = !write_done; }, "R");
    s.run();
    return {read_raced, "R observed the pre-write state"};
}

TEST(explore_shrink, dfs_finds_the_race_and_shrinking_keeps_it_failing)
{
    const auto found = explore::explore_dfs(planted_race);
    ASSERT_TRUE(found.failing.has_value());
    EXPECT_EQ(found.failure_detail, "R observed the pre-write state");

    const auto shrunk = explore::shrink(*found.failing, planted_race);
    EXPECT_LE(shrunk.choices.size(), found.failing->choices.size());
    EXPECT_LE(shrunk.preemptions(), found.failing->preemptions());

    // The minimized schedule still reproduces the violation, bit-for-bit.
    const auto replayed = explore::replay(shrunk, planted_race);
    EXPECT_TRUE(replayed.violated);

    // And the race takes exactly one flipped decision to express.
    EXPECT_EQ(shrunk.preemptions(), 1u);
}

TEST(explore_replay, random_walk_replays_bit_for_bit_from_its_decision_string)
{
    std::string first_order;
    std::string replay_order;

    explore::controller walk({}, explore::controller::tail_policy::random, 1234);
    std::string order;
    order_probe(walk, &order);
    first_order = order;
    auto decisions = walk.decisions();
    decisions.trim();

    explore::controller again(decisions, explore::controller::tail_policy::first);
    order_probe(again, &order);
    replay_order = order;

    EXPECT_EQ(first_order, replay_order);
    EXPECT_FALSE(again.replay_diverged());
    auto replay_decisions = again.decisions();
    replay_decisions.trim();
    EXPECT_EQ(replay_decisions, decisions);
}

// --- acceptance: the CVE matrix and the kernel journal -------------------------

// Rows exercised by the smoke suite (the full 12-row sweep lives in
// test_explore_sweep.cpp behind `ctest -L explore`).
const std::vector<std::string> smoke_cves{"CVE-2018-5092", "CVE-2013-1714",
                                          "CVE-2017-7843", "CVE-2014-1719"};

TEST(explore_acceptance, random_walks_find_plain_schedules_triggering_cves)
{
    for (const auto& cve : smoke_cves) {
        explore::options opt;
        opt.max_schedules = 8;
        opt.seed = 11;
        const auto result =
            explore::explore_random(jsk::attacks::cve_trigger_program(cve, false), opt);
        ASSERT_TRUE(result.failing.has_value())
            << cve << ": no plain-browser schedule triggered the state machine";
    }
}

TEST(explore_acceptance, no_explored_jskernel_schedule_triggers_the_cves)
{
    for (const auto& cve : smoke_cves) {
        explore::options opt;
        opt.max_schedules = 6;
        opt.seed = 23;
        const auto result =
            explore::explore_random(jsk::attacks::cve_trigger_program(cve, true), opt);
        EXPECT_FALSE(result.failing.has_value())
            << cve << " triggered under JSKernel schedule " << result.failing->str();
        EXPECT_EQ(result.schedules_run, opt.max_schedules);
    }
}

TEST(explore_acceptance, cve_trigger_shrinks_and_replays_deterministically)
{
    explore::options opt;
    opt.max_schedules = 8;
    opt.seed = 31;
    const auto program = jsk::attacks::cve_trigger_program("CVE-2014-1719", false);
    const auto found = explore::explore_random(program, opt);
    ASSERT_TRUE(found.failing.has_value());

    const auto shrunk = explore::shrink(*found.failing, program);
    EXPECT_LE(shrunk.choices.size(), found.failing->choices.size());

    // Deterministic replay: the minimized decision string triggers on every
    // re-run and the controller consumes it without divergence.
    for (int i = 0; i < 2; ++i) {
        explore::controller ctl(shrunk, explore::controller::tail_policy::first);
        jsk::sim::explore::run_outcome out = program(ctl);
        EXPECT_TRUE(out.violated);
        EXPECT_FALSE(ctl.replay_diverged());
    }
}

TEST(explore_acceptance, kernel_journal_identical_across_100_explored_schedules)
{
    const auto report = jsk::defenses::audit_schedule_invariance(/*program_seed=*/5,
                                                                 /*schedules=*/100);
    EXPECT_EQ(report.schedules_run, 100u);
    EXPECT_TRUE(report.identical)
        << report.detail << "\nfailing schedule: "
        << (report.failing ? report.failing->str() : std::string("<none>"));
}

}  // namespace
