// Soundness of partial-order reduction (sim/por.h + the sleep-set DPOR in
// sim/explore.cpp), headed by the regression the module exists for: the old
// posts-only footprint judged two same-resource racers independent and
// pruned away the only schedule expressing the bug. options::legacy_footprint
// preserves that heuristic so these tests *demonstrate* the lost witness,
// then show the sound footprint recovering it — at the raw-simulator level,
// through a browser SharedArrayBuffer race, and through a CVE monitor sink.
// The differential half checks the reduction itself: with DPOR on, every CVE
// witness is still found, with strictly fewer schedules and real pruning,
// and randomized programs agree with the unreduced explorer.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "attacks/explore_sweep.h"
#include "kernel/journal.h"
#include "runtime/browser.h"
#include "runtime/vuln.h"
#include "sim/explore.h"
#include "sim/por.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace {

namespace sim = jsk::sim;
namespace explore = jsk::sim::explore;
namespace por = jsk::sim::por;
using sim::ms;

// --- the headline regression: same-resource writers on two threads -------------

/// Two tasks on different threads, neither posting anything, both writing the
/// same resource key. The violation only expresses when the non-default
/// order runs — exactly the swap the old footprint pruned.
explore::program same_key_writers(std::string* order)
{
    return [order](explore::controller& ctl) {
        sim::simulation s;
        const auto ta = s.create_thread("a");
        const auto tb = s.create_thread("b");
        ctl.attach(s);
        order->clear();
        constexpr std::uint64_t key = por::sab_key(7, 0);
        s.post(ta, 5 * ms, [&s, order] {
            s.note_access(key, /*write=*/true);
            order->push_back('A');
        }, "A");
        s.post(tb, 5 * ms, [&s, order] {
            s.note_access(key, /*write=*/true);
            order->push_back('B');
        }, "B");
        s.run();
        return explore::run_outcome{*order == "BA", "B overwrote A's slot"};
    };
}

TEST(por_regression, legacy_footprint_misses_the_same_key_witness)
{
    std::string order;

    // Ground truth: the unreduced DFS finds the swap.
    const auto plain = explore::explore_dfs(same_key_writers(&order));
    ASSERT_TRUE(plain.failing.has_value());

    // The old posts-only footprint: neither task posts, so the swap is
    // "independent" — pruned, witness lost, tree declared exhausted.
    explore::options legacy;
    legacy.dpor = true;
    legacy.legacy_footprint = true;
    const auto missed = explore::explore_dfs(same_key_writers(&order), legacy);
    EXPECT_FALSE(missed.failing.has_value());
    EXPECT_TRUE(missed.exhausted);
    EXPECT_EQ(missed.schedules_run, 1u);
    EXPECT_EQ(missed.pruned, 1u);

    // The sound footprint sees the write/write conflict and keeps the swap.
    explore::options fixed;
    fixed.dpor = true;
    const auto found = explore::explore_dfs(same_key_writers(&order), fixed);
    ASSERT_TRUE(found.failing.has_value());
    EXPECT_EQ(*found.failing, *plain.failing);
}

TEST(por_regression, browser_sab_race_is_dependent_under_the_sound_footprint)
{
    // Reader on a worker-like context races a writer on main over one SAB
    // slot; the violation is the read observing the pre-write value.
    const auto program = [](explore::controller& ctl) {
        jsk::rt::browser b{jsk::rt::chrome_profile()};
        jsk::rt::context& w = b.create_context("w", jsk::rt::context_kind::worker);
        ctl.attach(b.sim());
        auto buf = b.main().apis().create_shared_buffer(1);
        bool raced = false;
        b.main().post_task(5 * ms, [&] { b.main().apis().sab_store(buf, 0, 7.0, {}); });
        w.post_task(5 * ms, [&] { raced = (w.apis().sab_load(buf, 0, {}) == 0.0); });
        b.run();
        return explore::run_outcome{raced, "read saw the pre-write slot"};
    };

    const auto plain = explore::explore_dfs(program);
    ASSERT_TRUE(plain.failing.has_value());

    explore::options legacy;
    legacy.dpor = true;
    legacy.legacy_footprint = true;
    const auto missed = explore::explore_dfs(program, legacy);
    EXPECT_FALSE(missed.failing.has_value())
        << "legacy footprint should prune the SAB swap (that is the bug)";

    explore::options fixed;
    fixed.dpor = true;
    const auto found = explore::explore_dfs(program, fixed);
    ASSERT_TRUE(found.failing.has_value());
    EXPECT_EQ(*found.failing, *plain.failing);
}

TEST(por_regression, monitor_sink_race_is_dependent_under_the_sound_footprint)
{
    // CVE-2018-5092's shape reduced to its ordering core: fetch_freed on one
    // thread, fetch_aborted on another, monitor fires only freed-then-abort.
    // Neither task posts, so the legacy footprint prunes the trigger order.
    const auto program = [](explore::controller& ctl) {
        jsk::rt::browser b{jsk::rt::chrome_profile()};
        jsk::rt::vuln_registry vulns{b.bus()};
        jsk::rt::context& w = b.create_context("w", jsk::rt::context_kind::worker);
        ctl.attach(b.sim());
        b.main().post_task(5 * ms, [&] {
            jsk::rt::rt_event ev;
            ev.kind = jsk::rt::rt_event_kind::fetch_aborted;
            ev.thread = b.main().thread();
            ev.subject_id = 1;
            b.emit(ev);
        });
        w.post_task(5 * ms, [&] {
            jsk::rt::rt_event ev;
            ev.kind = jsk::rt::rt_event_kind::fetch_freed;
            ev.thread = w.thread();
            ev.subject_id = 1;
            b.emit(ev);
        });
        b.run();
        const auto* m = vulns.find("CVE-2018-5092");
        return explore::run_outcome{m != nullptr && m->triggered(),
                                    "abort delivered to freed fetch"};
    };

    const auto plain = explore::explore_dfs(program);
    ASSERT_TRUE(plain.failing.has_value());

    explore::options legacy;
    legacy.dpor = true;
    legacy.legacy_footprint = true;
    const auto missed = explore::explore_dfs(program, legacy);
    EXPECT_FALSE(missed.failing.has_value());

    explore::options fixed;
    fixed.dpor = true;
    const auto found = explore::explore_dfs(program, fixed);
    ASSERT_TRUE(found.failing.has_value());
    EXPECT_EQ(*found.failing, *plain.failing);
}

// --- access keys and watch masks ------------------------------------------------

TEST(por_keys, namespaces_are_disjoint_and_stable)
{
    EXPECT_NE(por::inbox_key(1), por::channel_key(0, 1));
    EXPECT_NE(por::sab_key(1, 0), por::sink_key(1));
    EXPECT_EQ(por::inbox_key(3) >> 56, 1u);
    EXPECT_EQ(por::channel_key(1, 2) >> 56, 2u);
    EXPECT_EQ(por::sab_key(1, 2) >> 56, 3u);
    EXPECT_EQ(por::sink_key(0) >> 56, 4u);
    EXPECT_NE(por::channel_key(1, 2), por::channel_key(2, 1));
    EXPECT_NE(por::sab_key(1, 2), por::sab_key(2, 1));
}

TEST(por_keys, watch_mask_slots_match_registry_order)
{
    using k = jsk::rt::rt_event_kind;
    jsk::rt::event_bus bus;
    jsk::rt::vuln_registry vulns{bus};
    const auto& monitors = vulns.monitors();
    ASSERT_EQ(monitors.size(), 12u);

    const auto slot_of = [&](const char* id) {
        for (std::size_t i = 0; i < monitors.size(); ++i) {
            if (monitors[i]->id() == id) return static_cast<std::uint32_t>(i);
        }
        ADD_FAILURE() << "no monitor " << id;
        return UINT32_MAX;
    };
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::fetch_freed),
              1u << slot_of("CVE-2018-5092"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::fetch_aborted),
              1u << slot_of("CVE-2018-5092"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::indexeddb_persisted_private),
              1u << slot_of("CVE-2017-7843"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::import_scripts_error),
              1u << slot_of("CVE-2015-7215"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::message_after_termination),
              1u << slot_of("CVE-2014-3194"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::terminate_during_dispatch),
              1u << slot_of("CVE-2014-1719"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::transferable_received),
              1u << slot_of("CVE-2014-1488"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::worker_error_event),
              1u << slot_of("CVE-2014-1487"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::page_reload),
              1u << slot_of("CVE-2013-6646"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::worker_created),
              1u << slot_of("CVE-2013-6646"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::worker_onmessage_assigned),
              1u << slot_of("CVE-2013-5602"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::xhr_request),
              1u << slot_of("CVE-2013-1714"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::cross_origin_script_imported),
              1u << slot_of("CVE-2011-1190"));
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::worker_double_termination),
              1u << slot_of("CVE-2010-4576"));
    // Kinds no monitor consumes stay silent.
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::message_posted), 0u);
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::fetch_started), 0u);
    EXPECT_EQ(jsk::rt::monitor_watch_mask(k::message_dropped), 0u);
}

// --- happens-before analysis ----------------------------------------------------

TEST(por_analysis, vector_clocks_capture_program_order_and_post_edges)
{
    explore::controller ctl({}, explore::controller::tail_policy::first);
    ctl.set_record_metadata(true);
    sim::simulation s;
    const auto ta = s.create_thread("a");
    const auto tb = s.create_thread("b");
    ctl.attach(s);
    // Step 0 (A1, thread a) posts C onto thread b; B1 (thread b) is
    // concurrent with A1; C is ordered after A1 by the post edge.
    s.post(ta, 1 * ms, [&s, tb] {
        s.post(tb, 10 * ms, [] {}, "C");
    }, "A1");
    s.post(tb, 2 * ms, [] {}, "B1");
    s.run();

    const por::analysis an(ctl);
    ASSERT_EQ(an.steps(), 3u);
    const auto& exec = ctl.exec_log();
    // Identify steps by label order: A1 ran at 1ms, B1 at 2ms, C at 10ms.
    std::size_t a1 = 0, b1 = 1, c = 2;
    ASSERT_EQ(exec[a1].thread, ta);
    ASSERT_EQ(exec[b1].thread, tb);
    ASSERT_EQ(exec[c].thread, tb);

    EXPECT_TRUE(an.happens_before(a1, c));   // post edge
    EXPECT_TRUE(an.happens_before(b1, c));   // program order on thread b
    EXPECT_FALSE(an.happens_before(c, a1));
    EXPECT_TRUE(an.concurrent(a1, b1));
    EXPECT_FALSE(an.concurrent(a1, c));
}

TEST(por_analysis, class_hash_is_invariant_under_independent_swaps)
{
    // Two independent tasks (disjoint keys) and one dependent pair (shared
    // key): swapping the independent pair preserves the class hash; swapping
    // the dependent pair changes it.
    const auto run_with = [](const explore::schedule& sched, std::uint64_t key_a,
                             std::uint64_t key_b) {
        explore::controller ctl(sched, explore::controller::tail_policy::first);
        ctl.set_record_metadata(true);
        sim::simulation s;
        const auto ta = s.create_thread("a");
        const auto tb = s.create_thread("b");
        ctl.attach(s);
        s.post(ta, 5 * ms, [&s, key_a] { s.note_access(key_a, true); }, "A");
        s.post(tb, 5 * ms, [&s, key_b] { s.note_access(key_b, true); }, "B");
        s.run();
        return por::analysis(ctl).class_hash();
    };
    explore::schedule def;     // default order
    explore::schedule swapped;
    swapped.choices = {1};

    const auto ka = por::sab_key(1, 0);
    const auto kb = por::sab_key(2, 0);
    EXPECT_EQ(run_with(def, ka, kb), run_with(swapped, ka, kb));
    EXPECT_NE(run_with(def, ka, ka), run_with(swapped, ka, ka));
}

// --- DPOR differential over the CVE matrix --------------------------------------

struct cve_budget {
    const char* id;
    std::uint64_t max_schedules;
};

// DFS budgets sized from measurement: enough for the *unreduced* DFS to find
// each witness, so the differential compares two complete searches.
const std::vector<cve_budget> k_cve_budgets{
    {"CVE-2018-5092", 64},   {"CVE-2017-7843", 64},  {"CVE-2015-7215", 64},
    {"CVE-2014-3194", 64},   {"CVE-2014-1719", 64},  {"CVE-2014-1488", 64},
    {"CVE-2014-1487", 64},   {"CVE-2013-6646", 64},  {"CVE-2013-5602", 64},
    {"CVE-2013-1714", 64},   {"CVE-2011-1190", 64},  {"CVE-2010-4576", 64},
};

TEST(por_differential, dpor_keeps_every_cve_witness_with_fewer_schedules)
{
    for (const auto& [cve, budget] : k_cve_budgets) {
        const auto program = jsk::attacks::cve_trigger_program(cve, false);

        explore::options off;
        off.max_schedules = budget;
        const auto plain = explore::explore_dfs(program, off);
        ASSERT_TRUE(plain.failing.has_value())
            << cve << ": unreduced DFS found no witness within " << budget;

        explore::options on;
        on.max_schedules = budget;
        on.dpor = true;
        const auto reduced = explore::explore_dfs(program, on);
        ASSERT_TRUE(reduced.failing.has_value())
            << cve << ": DPOR pruned away the witness (unsound reduction)";
        EXPECT_LE(reduced.schedules_run, plain.schedules_run) << cve;
        // The scripted exploits are timed to win their race outright, so the
        // very first schedule is already the witness in both modes — the
        // point of this differential is preservation (reduction never loses
        // a CVE), not acceleration. Search-time reduction is measured on the
        // needle family below, where the witness actually hides.
        EXPECT_EQ(plain.schedules_run, 1u) << cve;
        EXPECT_EQ(reduced.schedules_run, 1u) << cve;

        // Same bug: both witnesses shrink to schedules that reproduce it.
        const auto shrunk_plain = explore::shrink(*plain.failing, program);
        const auto shrunk_reduced = explore::shrink(*reduced.failing, program);
        EXPECT_TRUE(explore::replay(shrunk_plain, program).violated) << cve;
        EXPECT_TRUE(explore::replay(shrunk_reduced, program).violated) << cve;
    }
}

TEST(por_differential, dpor_finds_the_buried_needle_witness_faster)
{
    // The search-hard family (attacks/explore_sweep.h): a two-flip witness at
    // the shallow decision points, buried under `noise` commuting tasks the
    // unreduced DFS explores first. DPOR reaches the needle in a constant
    // number of runs; the plain search grows with the noise. Exact counts are
    // pinned — the traversal is canonical, so they are stable by design.
    const auto program = jsk::attacks::needle_search_program(10);

    explore::options off;
    off.max_schedules = 100'000;
    const auto plain = explore::explore_dfs(program, off);
    ASSERT_TRUE(plain.failing.has_value());
    EXPECT_EQ(plain.schedules_run, 94u);

    explore::options on = off;
    on.dpor = true;
    const auto reduced = explore::explore_dfs(program, on);
    ASSERT_TRUE(reduced.failing.has_value());
    EXPECT_EQ(reduced.schedules_run, 4u);
    EXPECT_EQ(reduced.pruned, 135u);
    EXPECT_EQ(*reduced.failing, *plain.failing);
    EXPECT_TRUE(explore::replay(*reduced.failing, program).violated);
    // The acceptance bar the bench tracks: >= 10x fewer schedules to witness.
    EXPECT_GE(plain.schedules_run, 10 * reduced.schedules_run);
}

TEST(por_differential, dpor_strictly_reduces_schedules_on_exhaustive_search)
{
    // On a program DFS can exhaust, DPOR must reach the same verdict (no
    // witness) over strictly fewer runs. Three independent racers plus one
    // communicating pair keeps the full tree small but non-trivial.
    const auto program = [](explore::controller& ctl) {
        sim::simulation s;
        const auto ta = s.create_thread("a");
        const auto tb = s.create_thread("b");
        ctl.attach(s);
        s.post(ta, 1 * ms, [&s] { s.consume(10 * sim::us); });
        s.post(tb, 1 * ms, [&s] { s.consume(10 * sim::us); });
        s.post(ta, 5 * ms, [&s, tb] { s.post(tb, 0, [] {}); });
        s.post(tb, 5 * ms, [&s] { s.consume(10 * sim::us); });
        s.run();
        return explore::run_outcome{};
    };
    explore::options off;
    off.max_schedules = 10'000;
    const auto plain = explore::explore_dfs(program, off);
    ASSERT_TRUE(plain.exhausted);
    ASSERT_FALSE(plain.failing.has_value());

    explore::options on = off;
    on.dpor = true;
    const auto reduced = explore::explore_dfs(program, on);
    EXPECT_TRUE(reduced.exhausted);
    EXPECT_FALSE(reduced.failing.has_value());
    EXPECT_LT(reduced.schedules_run, plain.schedules_run);
    EXPECT_GT(reduced.pruned, 0u);
}

// --- randomized-program fuzz: reduced and unreduced searches agree --------------

TEST(por_fuzz, randomized_programs_agree_on_witness_existence)
{
    // Random little concurrent programs: 2-3 threads, 4-6 tasks, random
    // shared-key writes, some cross-posts. The violation is a specific
    // access order on one key. DPOR and the unreduced DFS must agree on
    // whether any schedule expresses it, and a found witness must replay.
    for (std::uint64_t trial = 0; trial < 24; ++trial) {
        sim::rng gen(sim::split(0xf0f0f0f0ULL, trial));
        const int threads = static_cast<int>(gen.uniform(2, 3));
        const int tasks = static_cast<int>(gen.uniform(4, 6));
        struct task_spec {
            int thread;
            std::uint64_t key;
            bool post_next;
        };
        std::vector<task_spec> specs;
        for (int i = 0; i < tasks; ++i) {
            specs.push_back(task_spec{
                static_cast<int>(gen.uniform(0, threads - 1)),
                por::sab_key(9, static_cast<std::uint64_t>(gen.uniform(0, 1))),
                gen.uniform(0, 3) == 0,
            });
        }
        // The oracle may only observe orderings the footprint declares
        // dependent — tasks writing the *same* key. Different-key tasks are
        // genuinely independent, so a predicate on their relative order
        // would be flipped by perfectly sound commutations. Watch the
        // writer sequence of one key and ask for its fully-reversed pair.
        const std::uint64_t watched = por::sab_key(9, 0);
        int lo = -1, hi = -1;
        for (int i = 0; i < tasks; ++i) {
            if (specs[static_cast<std::size_t>(i)].key != watched) continue;
            if (lo < 0) lo = i;
            hi = i;
        }
        const auto program = [&](explore::controller& ctl) {
            sim::simulation s;
            std::vector<sim::thread_id> tid;
            for (int t = 0; t < threads; ++t) {
                tid.push_back(s.create_thread("t" + std::to_string(t)));
            }
            ctl.attach(s);
            auto last_key_writer = std::make_shared<std::vector<int>>();
            for (int i = 0; i < tasks; ++i) {
                const auto& spec = specs[static_cast<std::size_t>(i)];
                s.post(tid[static_cast<std::size_t>(spec.thread)], 5 * ms,
                       [&s, &tid, spec, i, last_key_writer, threads, watched] {
                           s.note_access(spec.key, /*write=*/true);
                           if (spec.key == watched) last_key_writer->push_back(i);
                           if (spec.post_next) {
                               s.post(tid[static_cast<std::size_t>(
                                          (spec.thread + 1) % threads)],
                                      0, [&s] { s.consume(10 * sim::us); });
                           }
                       });
            }
            s.run();
            // Violation: on the watched key, the highest-numbered writer ran
            // first and the lowest-numbered ran last (a fully reversed pair).
            bool violated = false;
            if (lo >= 0 && hi > lo && last_key_writer->size() >= 2) {
                violated = last_key_writer->front() == hi &&
                           last_key_writer->back() == lo;
            }
            return explore::run_outcome{violated, "reversed pair"};
        };

        explore::options off;
        off.max_schedules = 4'000;
        const auto plain = explore::explore_dfs(program, off);
        explore::options on = off;
        on.dpor = true;
        const auto reduced = explore::explore_dfs(program, on);

        ASSERT_EQ(plain.failing.has_value(), reduced.failing.has_value())
            << "trial " << trial << ": DPOR changed witness existence"
            << " (plain " << plain.schedules_run << " runs, reduced "
            << reduced.schedules_run << ")";
        if (reduced.failing.has_value()) {
            EXPECT_TRUE(explore::replay(*reduced.failing, program).violated)
                << "trial " << trial;
        }
        if (plain.exhausted && reduced.exhausted) {
            EXPECT_LE(reduced.schedules_run, plain.schedules_run) << "trial " << trial;
        }
    }
}

// --- coverage-guided random walks -----------------------------------------------

TEST(por_coverage, coverage_mode_is_deterministic_and_counts_classes)
{
    const auto program = [](explore::controller& ctl) {
        sim::simulation s;
        const auto ta = s.create_thread("a");
        const auto tb = s.create_thread("b");
        ctl.attach(s);
        for (int i = 0; i < 3; ++i) {
            s.post(ta, 1 * ms, [&s] { s.note_access(por::sab_key(1, 0), true); });
            s.post(tb, 1 * ms, [&s] { s.note_access(por::sab_key(1, 0), true); });
        }
        s.run();
        return explore::run_outcome{};
    };
    explore::options opt;
    opt.max_schedules = 16;
    opt.seed = 7;
    opt.coverage = true;
    const auto first = explore::explore_random(program, opt);
    const auto second = explore::explore_random(program, opt);
    EXPECT_EQ(first.schedules_run, second.schedules_run);
    EXPECT_EQ(first.coverage_classes, second.coverage_classes);
    EXPECT_EQ(first.coverage_novel, second.coverage_novel);
    EXPECT_GT(first.coverage_classes, 1u);  // the swaps produce distinct classes
    EXPECT_GT(first.coverage_novel, 0u);
}

TEST(por_coverage, coverage_walks_still_find_cve_witnesses)
{
    for (const char* cve : {"CVE-2018-5092", "CVE-2014-1719"}) {
        explore::options opt;
        opt.max_schedules = 16;
        opt.seed = 11;
        opt.coverage = true;
        const auto result =
            explore::explore_random(jsk::attacks::cve_trigger_program(cve, false), opt);
        ASSERT_TRUE(result.failing.has_value()) << cve;
    }
}

// --- journal fingerprint ---------------------------------------------------------

TEST(por_journal, class_hash_tracks_timeline_equality)
{
    jsk::kernel::journal a;
    jsk::kernel::journal b;
    jsk::kernel::kevent ev;
    ev.type = jsk::kernel::kevent_type::timeout;
    ev.predicted_time = 4.0;
    ev.label = "t0";
    a.record(ev);
    b.record(ev);
    EXPECT_EQ(a.class_hash(), b.class_hash());

    jsk::kernel::kevent other = ev;
    other.label = "t1";
    a.record(ev);
    b.record(other);
    EXPECT_NE(a.class_hash(), b.class_hash());

    // event_id differences are invisible, exactly like operator==.
    jsk::kernel::journal c;
    jsk::kernel::kevent renumbered = ev;
    renumbered.id = 999;
    c.record(renumbered);
    jsk::kernel::journal d;
    d.record(ev);
    EXPECT_EQ(c.class_hash(), d.class_hash());
}

}  // namespace
