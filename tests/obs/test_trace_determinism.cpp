// Trace-export determinism pins.
//
// The obs contract is that every event is stamped with *virtual* time only,
// so a trace is as deterministic as the schedule that produced it: two runs
// with identical seeds must export byte-identical Chrome trace JSON —
// including the metrics snapshot riding in otherData. That makes the export
// a determinism oracle alongside the kernel journal; any instrumentation
// point that leaks wall-clock state, iteration order of an unordered
// container, or pointer values into an event fails here.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "kernel/kernel.h"
#include "obs/chrome_export.h"
#include "obs/collect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/browser.h"
#include "runtime/profile.h"
#include "runtime/vuln.h"
#include "sim/explore.h"
#include "sim/simulation.h"
#include "sim/time.h"
#include "workloads/random_program.h"

namespace {

namespace sim = jsk::sim;
namespace explore = jsk::sim::explore;
namespace obs = jsk::obs;
namespace rt = jsk::rt;

struct traced_run {
    std::string trace;          // full Chrome trace-event export
    std::size_t events = 0;     // sink event count
    std::size_t dispatch_spans = 0;
    std::size_t journal_entries = 0;  // summed over the kernel tree
};

std::size_t journal_total(const jsk::kernel::kernel& k)
{
    std::size_t n = k.dispatch_journal().size();
    for (const auto& child : k.children()) n += journal_total(*child);
    return n;
}

/// One fully instrumented world: browser + vuln monitors + kernel + random
/// program, driven down a seeded random walk. Mirrors the A/B determinism
/// harness (tests/sim/test_ab_determinism.cpp) with the obs sink attached.
traced_run run_traced(std::uint64_t program_seed, std::uint64_t walk_seed)
{
    rt::browser b(rt::chrome_profile());
    rt::vuln_registry vulns(b.bus());
    obs::sink sink;
    b.sim().set_trace_sink(&sink);
    obs::wire_runtime(sink, b);
    vulns.set_trace_sink(&sink);

    explore::controller ctl({}, explore::controller::tail_policy::random, walk_seed);
    ctl.set_window(500 * sim::us);
    ctl.attach(b.sim());

    std::unique_ptr<jsk::kernel::kernel> k = jsk::kernel::kernel::boot(b);
    auto log = std::make_shared<jsk::workloads::observation_log>();
    jsk::workloads::install_random_program(b, program_seed, log);
    b.run_until(60 * sim::sec, 5'000'000);

    obs::registry reg;
    obs::collect_sim(reg, b.sim());
    obs::collect_kernel(reg, *k);
    obs::collect_vulns(reg, vulns);

    traced_run out;
    out.events = sink.size();
    for (const obs::trace_event& ev : sink.events()) {
        if (ev.cat == obs::category::kernel && ev.ph == 'X' &&
            ev.name.rfind("dispatch:", 0) == 0) {
            ++out.dispatch_spans;
        }
    }
    out.journal_entries = journal_total(*k);
    out.trace = obs::to_chrome_trace(sink, reg.to_json());
    return out;
}

TEST(trace_determinism, same_seed_runs_export_byte_identical_traces)
{
    for (const std::uint64_t program_seed : {3ull, 7ull}) {
        const traced_run a = run_traced(program_seed, 101);
        const traced_run b = run_traced(program_seed, 101);
        ASSERT_GT(a.events, 0u) << "program " << program_seed
                                << ": instrumentation recorded nothing";
        EXPECT_EQ(a.events, b.events);
        // Byte-for-byte: timestamps, args, metrics snapshot, everything.
        EXPECT_EQ(a.trace, b.trace)
            << "program " << program_seed << ": same-seed exports diverged";
    }
}

TEST(trace_determinism, different_walks_export_different_traces)
{
    // Sanity for the oracle itself: the export must be *sensitive* to the
    // schedule, otherwise byte-equality above proves nothing.
    const traced_run a = run_traced(3, 101);
    const traced_run b = run_traced(3, 202);
    EXPECT_NE(a.trace, b.trace);
}

TEST(trace_determinism, dispatch_spans_match_kernel_journal)
{
    // Every kernel-dispatched event leaves exactly one journal record and —
    // with a sink attached — exactly one "dispatch:*" span. The two records
    // of the same decision stream must agree in count.
    const traced_run r = run_traced(3, 101);
    ASSERT_GT(r.journal_entries, 0u);
    EXPECT_EQ(r.dispatch_spans, r.journal_entries);
}

TEST(trace_determinism, export_is_stable_across_repeated_serialization)
{
    // Serializing the same sink twice is trivially equal only if the export
    // never reads mutable global state; pin it anyway, it is cheap.
    rt::browser b(rt::chrome_profile());
    obs::sink sink;
    b.sim().set_trace_sink(&sink);
    auto log = std::make_shared<jsk::workloads::observation_log>();
    jsk::workloads::install_random_program(b, 11, log);
    b.run_until(60 * sim::sec, 5'000'000);
    EXPECT_EQ(obs::to_chrome_trace(sink), obs::to_chrome_trace(sink));
}

}  // namespace
