// Unit tests for the jsk::obs observability subsystem: sink recording,
// Chrome trace-event export (pinned byte-for-byte against a golden string),
// schema validation of a real simulated scenario via kernel::json::parse,
// metrics instruments, and the trace_recorder adapter seam.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/json.h"
#include "obs/chrome_export.h"
#include "obs/collect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace {

namespace obs = jsk::obs;
namespace sim = jsk::sim;
namespace json = jsk::kernel::json;

TEST(obs_sink, records_spans_and_instants_in_emission_order)
{
    obs::sink s;
    EXPECT_TRUE(s.empty());

    s.complete(obs::category::task, 0, 10 * sim::us, 5 * sim::us, "tick",
               {obs::num("id", 7)});
    s.instant(obs::category::timer, 1, 20 * sim::us, "timer:fire");
    ASSERT_EQ(s.size(), 2u);

    const obs::trace_event& span = s.events()[0];
    EXPECT_EQ(span.ph, 'X');
    EXPECT_EQ(span.cat, obs::category::task);
    EXPECT_EQ(span.tid, 0);
    EXPECT_EQ(span.ts, 10 * sim::us);
    EXPECT_EQ(span.dur, 5 * sim::us);
    EXPECT_EQ(span.name, "tick");

    const obs::trace_event& inst = s.events()[1];
    EXPECT_EQ(inst.ph, 'i');
    EXPECT_EQ(inst.cat, obs::category::timer);
    EXPECT_EQ(inst.dur, 0);

    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(obs_sink, negative_durations_clamp_to_zero)
{
    obs::sink s;
    s.complete(obs::category::kernel, 0, 5, -3, "x");
    EXPECT_EQ(s.events()[0].dur, 0);
}

TEST(obs_sink, find_arg_returns_typed_values)
{
    obs::sink s;
    s.instant(obs::category::policy, 0, 0, "policy:fetch",
              {obs::num("denied", 1), obs::num("score", 0.5),
               obs::text("url", "https://a.test/")});
    const obs::trace_event& ev = s.events()[0];

    const obs::arg* denied = obs::find_arg(ev, "denied");
    ASSERT_NE(denied, nullptr);
    EXPECT_EQ(denied->k, obs::arg::kind::i64);
    EXPECT_EQ(denied->i, 1);

    const obs::arg* score = obs::find_arg(ev, "score");
    ASSERT_NE(score, nullptr);
    EXPECT_EQ(score->k, obs::arg::kind::f64);
    EXPECT_DOUBLE_EQ(score->d, 0.5);

    const obs::arg* url = obs::find_arg(ev, "url");
    ASSERT_NE(url, nullptr);
    EXPECT_EQ(url->s, "https://a.test/");

    EXPECT_EQ(obs::find_arg(ev, "missing"), nullptr);
}

TEST(obs_sink, thread_names_register_and_rename)
{
    obs::sink s;
    s.set_thread_name(0, "main");
    s.set_thread_name(1, "worker");
    s.set_thread_name(0, "main-renamed");
    ASSERT_EQ(s.thread_names().size(), 2u);
    EXPECT_EQ(s.thread_names()[0].second, "main-renamed");
    EXPECT_EQ(s.thread_names()[1].second, "worker");
}

// The export format, pinned byte-for-byte. This golden string doubles as the
// format's documentation: process/thread metadata first, then one event per
// line ('X' with ts+dur, 'i' with thread scope), timestamps as fixed-point
// microseconds, typed args, displayTimeUnit and otherData trailer.
TEST(obs_export, golden_chrome_trace)
{
    obs::sink s;
    s.set_thread_name(0, "main");
    s.complete(obs::category::task, 0, 1500, 2500, "tick",
               {obs::num("id", 3), obs::num("ready", 0)});
    s.instant(obs::category::attack, 0, 4000, "trigger:CVE-2018-5092");

    const std::string got = obs::to_chrome_trace(s, "{\"seed\":1}");
    const std::string want =
        "{\"traceEvents\":[\n"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"jskernel\"}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"main\"}},\n"
        "{\"name\":\"tick\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
        "\"ts\":1.500,\"dur\":2.500,\"args\":{\"id\":3,\"ready\":0}},\n"
        "{\"name\":\"trigger:CVE-2018-5092\",\"cat\":\"attack\",\"ph\":\"i\","
        "\"pid\":1,\"tid\":0,\"ts\":4.000,\"s\":\"t\"}\n"
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"seed\":1}}\n";
    EXPECT_EQ(got, want);
}

TEST(obs_export, escapes_names_and_string_args)
{
    obs::sink s;
    s.instant(obs::category::page, 0, 0, "quote\"back\\slash\nnl",
              {obs::text("url", std::string("a\tb\x01"
                                            "c"))});
    const std::string out = obs::to_chrome_trace(s);
    EXPECT_NE(out.find("quote\\\"back\\\\slash\\nnl"), std::string::npos);
    EXPECT_NE(out.find("a\\tb\\u0001c"), std::string::npos);
    // The export must still be valid JSON.
    EXPECT_NO_THROW(json::parse(out));
}

TEST(obs_export, simulated_scenario_parses_with_valid_schema)
{
    // A tiny pure-sim world: three labelled tasks on one thread, one of which
    // burns virtual time. Everything the simulator emits must round-trip
    // through our own JSON parser with the trace-event schema intact.
    sim::simulation s;
    obs::sink sink;
    s.set_trace_sink(&sink);
    const sim::thread_id t = s.create_thread("main");
    s.post(t, 1 * sim::ms, [&] { s.consume(2 * sim::ms); }, "busy");
    s.post(t, 2 * sim::ms, [] {}, "idle");
    s.post(t, 5 * sim::ms, [] {}, "late");
    s.run();

    const std::string out = obs::to_chrome_trace(sink);
    const json::value root = json::parse(out);
    ASSERT_TRUE(root.is_object());
    EXPECT_EQ(root.get_string("displayTimeUnit"), "ms");

    const json::array& events = root.get("traceEvents").as_array();
    std::size_t spans = 0;
    bool saw_thread_meta = false;
    for (const json::value& ev : events) {
        ASSERT_TRUE(ev.is_object());
        const std::string ph = ev.get_string("ph");
        EXPECT_EQ(ev.get("pid").as_number(), 1);
        if (ph == "M") {
            saw_thread_meta |= ev.get_string("name") == "thread_name";
            continue;
        }
        EXPECT_TRUE(ev.get("ts").is_number());
        EXPECT_TRUE(ev.get("tid").is_number());
        if (ph == "X") {
            ++spans;
            EXPECT_EQ(ev.get_string("cat"), "task");
            EXPECT_TRUE(ev.get("dur").is_number());
            EXPECT_TRUE(ev.get("args").get("id").is_number());
        } else {
            EXPECT_EQ(ph, "i");
            EXPECT_EQ(ev.get_string("s"), "t");
        }
    }
    EXPECT_TRUE(saw_thread_meta);
    EXPECT_EQ(spans, 3u);  // one 'X' span per executed task

    // The "busy" span's duration is its consumed virtual time: 2ms = 2000µs.
    bool found_busy = false;
    for (const json::value& ev : events) {
        if (ev.get_string("name") == "busy") {
            found_busy = true;
            EXPECT_DOUBLE_EQ(ev.get("ts").as_number(), 1000.0);
            EXPECT_DOUBLE_EQ(ev.get("dur").as_number(), 2000.0);
        }
    }
    EXPECT_TRUE(found_busy);
}

TEST(obs_metrics, counter_gauge_histogram_basics)
{
    obs::registry reg;
    reg.get_counter("a").inc();
    reg.get_counter("a").inc(4);
    EXPECT_EQ(reg.get_counter("a").value(), 5u);

    reg.get_gauge("g").set(2.5);
    EXPECT_DOUBLE_EQ(reg.get_gauge("g").value(), 2.5);

    obs::histogram& h = reg.get_histogram("h", {1, 2, 4});
    h.record(1);    // bucket 0 (inclusive upper edge)
    h.record(3);    // bucket 2
    h.record(100);  // +inf bucket
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 104.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    ASSERT_EQ(h.bucket_counts().size(), 4u);
    EXPECT_EQ(h.bucket_counts()[0], 1u);
    EXPECT_EQ(h.bucket_counts()[1], 0u);
    EXPECT_EQ(h.bucket_counts()[2], 1u);
    EXPECT_EQ(h.bucket_counts()[3], 1u);

    // Same name returns the same instrument; the later bounds are ignored.
    EXPECT_EQ(&reg.get_histogram("h", {9}), &h);
}

TEST(obs_metrics, snapshot_serializes_name_ordered_and_omits_empty_sections)
{
    obs::registry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.to_json(), "{}");

    reg.get_counter("z.second").set(2);
    reg.get_counter("a.first").set(1);
    EXPECT_EQ(reg.to_json(), "{\"counters\":{\"a.first\":1,\"z.second\":2}}");

    reg.get_gauge("depth").set(3);
    obs::histogram& h = reg.get_histogram("win", {0, 1});
    h.record_n(1, 2);
    const std::string out = reg.to_json();
    EXPECT_EQ(out,
              "{\"counters\":{\"a.first\":1,\"z.second\":2},"
              "\"gauges\":{\"depth\":3},"
              "\"histograms\":{\"win\":{\"bounds\":[0,1],\"count\":2,"
              "\"counts\":[0,2,0],\"max\":1,\"sum\":2}}}");
    // And it parses back with our own reader.
    EXPECT_NO_THROW(json::parse(out));
}

TEST(obs_metrics, collect_sim_reports_execution_counters)
{
    sim::simulation s;
    const sim::thread_id t = s.create_thread("main");
    for (int i = 0; i < 4; ++i) s.post(t, i * sim::ms, [] {});
    s.run();

    obs::registry reg;
    obs::collect_sim(reg, s);
    EXPECT_EQ(reg.counters().at("sim.tasks_executed").value(), 4u);
    EXPECT_DOUBLE_EQ(reg.gauges().at("sim.threads").value(), 1.0);
    EXPECT_DOUBLE_EQ(reg.gauges().at("sim.pending_tasks").value(), 0.0);
}

TEST(obs_adapter, trace_recorder_restores_previous_sink)
{
    // The sim::trace_recorder is now a shadowing adapter: attaching must save
    // the installed sink and detaching must bring it back.
    sim::simulation s;
    obs::sink global;
    s.set_trace_sink(&global);

    const sim::thread_id t = s.create_thread("main");
    {
        sim::trace_recorder rec;
        rec.attach(s, t);
        EXPECT_NE(s.trace_sink(), &global);
        s.post(t, 1 * sim::ms, [] {}, "shadowed");
        s.run();
        ASSERT_EQ(rec.records().size(), 1u);
        EXPECT_EQ(rec.records()[0].label, "shadowed");
        EXPECT_EQ(rec.records()[0].thread, t);
        rec.detach();
        EXPECT_EQ(s.trace_sink(), &global);
    }
    // The shadowed span went to the recorder, not the global sink.
    EXPECT_TRUE(global.empty());

    s.post(t, 2 * sim::ms, [] {}, "global");
    s.run();
    EXPECT_EQ(global.size(), 1u);
}

}  // namespace
