// Snapshot-backed sweeps under jsk::par: byte-determinism and exact cache
// accounting.
//
// The contract: `snapshots = true` is a pure throughput knob. The matrix
// JSON a snapshot-backed sweep emits must be byte-identical to the
// fresh-world sweep at every --jobs count, the witness cache must see
// exactly the same hit/miss/entry sequence, and the fork telemetry must
// add up (every non-cached trial is one fork and one restore; forks never
// leak into the byte-compared artifacts).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/chaos_sweep.h"
#include "attacks/explore_sweep.h"
#include "core/arena.h"
#include "core/snapshot.h"
#include "par/cache.h"
#include "par/pool.h"

namespace {

using namespace jsk;

#define REQUIRE_ARENA()                                                   \
    do {                                                                  \
        if (!core::arena::supported())                                    \
            GTEST_SKIP() << "no arena address-space support on this host"; \
    } while (0)

std::string cve_json_at(std::size_t jobs, std::uint64_t walks,
                        attacks::matrix_options base)
{
    base.jobs = jobs;
    return attacks::cve_matrix_json(attacks::explore_cve_matrix(walks, base));
}

std::string chaos_json_at(std::size_t jobs, attacks::chaos_matrix_options base)
{
    base.jobs = jobs;
    const auto cells = attacks::default_chaos_cells(/*cves=*/4, /*plans=*/2);
    return attacks::chaos_matrix_json(attacks::run_chaos_matrix(cells, base));
}

TEST(par_snapshot, cve_matrix_bytes_match_fresh_sweep_at_jobs_1_2_8)
{
    REQUIRE_ARENA();
    attacks::matrix_options opt;
    opt.explore.seed = 101;
    opt.snapshots = false;
    const std::string fresh = cve_json_at(1, 2, opt);
    EXPECT_FALSE(fresh.empty());

    opt.snapshots = true;
    EXPECT_EQ(cve_json_at(1, 2, opt), fresh);
    EXPECT_EQ(cve_json_at(2, 2, opt), fresh);
    EXPECT_EQ(cve_json_at(8, 2, opt), fresh);
}

TEST(par_snapshot, chaos_matrix_bytes_match_fresh_sweep_at_jobs_1_2_8)
{
    REQUIRE_ARENA();
    attacks::chaos_matrix_options opt;
    opt.snapshots = false;
    const std::string fresh = chaos_json_at(1, opt);
    EXPECT_FALSE(fresh.empty());

    opt.snapshots = true;
    EXPECT_EQ(chaos_json_at(1, opt), fresh);
    EXPECT_EQ(chaos_json_at(2, opt), fresh);
    EXPECT_EQ(chaos_json_at(8, opt), fresh);
}

TEST(par_snapshot, witness_cache_accounting_identical_to_fresh_sweeps)
{
    REQUIRE_ARENA();
    // PR5's cache-pinning methodology, re-run over the forked path: the
    // ground truth is an *uncached, fresh-world* serial sweep; the cold
    // snapshot-backed sweep must populate the cache with all misses, and
    // warm re-sweeps must recall every cell without forking new entries.
    attacks::matrix_options opt;
    opt.explore.seed = 101;
    opt.snapshots = false;
    const std::string baseline = cve_json_at(1, 2, opt);

    par::result_cache<attacks::cve_trial_outcome> cache;
    opt.snapshots = true;
    opt.cache = &cache;
    EXPECT_EQ(cve_json_at(1, 2, opt), baseline);
    const auto cold = cache.snapshot();
    const std::uint64_t jobs_per_sweep = attacks::cve_ids().size() * 2 * 2;
    EXPECT_GT(cold.entries, 0u);
    EXPECT_EQ(cold.hits, 0u);
    EXPECT_EQ(cold.misses, jobs_per_sweep);

    EXPECT_EQ(cve_json_at(2, 2, opt), baseline);
    EXPECT_EQ(cve_json_at(8, 2, opt), baseline);
    const auto warm = cache.snapshot();
    EXPECT_EQ(warm.hits, 2 * jobs_per_sweep);
    EXPECT_EQ(warm.misses, cold.misses);
    EXPECT_EQ(warm.entries, cold.entries);
}

TEST(par_snapshot, fork_stats_account_for_every_trial)
{
    REQUIRE_ARENA();
    // Serial sweep: one worker, one recipe -> exactly one snapshot, and
    // every job is one fork + one restore.
    attacks::matrix_options opt;
    opt.explore.seed = 101;
    core::fork_stats serial;
    opt.fork_stats = &serial;
    opt.jobs = 1;
    (void)attacks::cve_matrix_json(attacks::explore_cve_matrix(2, opt));
    const std::uint64_t job_count = attacks::cve_ids().size() * 2 * 2;
    EXPECT_EQ(serial.snapshots, 1u);
    EXPECT_EQ(serial.forks, job_count);
    EXPECT_EQ(serial.restores, job_count);
    EXPECT_GT(serial.image_bytes, 0u);

    // Parallel sweep: snapshots replicate per worker (at most one per
    // worker here), but the fork total is workload-determined.
    core::fork_stats par8;
    opt.fork_stats = &par8;
    opt.jobs = 8;
    (void)attacks::cve_matrix_json(attacks::explore_cve_matrix(2, opt));
    EXPECT_GE(par8.snapshots, 1u);
    EXPECT_LE(par8.snapshots, 8u);
    EXPECT_EQ(par8.forks, job_count);
    EXPECT_EQ(par8.restores, job_count);
}

TEST(par_snapshot, chaos_fork_stats_one_snapshot_per_defense_shape)
{
    REQUIRE_ARENA();
    attacks::chaos_matrix_options opt;
    core::fork_stats st;
    opt.fork_stats = &st;
    opt.jobs = 1;
    const auto cells = attacks::default_chaos_cells(/*cves=*/2, /*plans=*/2);
    (void)attacks::run_chaos_matrix(cells, opt);
    // Serial worker builds one world per defense shape: plain + jskernel.
    EXPECT_EQ(st.snapshots, 2u);
    EXPECT_EQ(st.forks, cells.size());
    EXPECT_EQ(st.restores, cells.size());
}

}  // namespace
