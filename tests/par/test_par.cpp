// jsk::par unit suite: shard queue coverage, worker-pool semantics (results
// per slot, deterministic error propagation, pool reuse), the witness-keyed
// result cache, the obs per-shard merge functions, and the cached-program
// adapter. The stress cases double as the TSan workload CI runs — they
// hammer the queue/pool/cache from every worker with no simulator in the
// way, so a data race in jsk::par itself surfaces here first.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/cache.h"
#include "par/cached_program.h"
#include "par/pool.h"
#include "par/sweep.h"
#include "sim/rng.h"

namespace {

using namespace jsk;

TEST(shard_queue, claims_cover_range_exactly_once)
{
    par::shard_queue q(17, 4);
    std::vector<int> seen(17, 0);
    std::size_t begin = 0;
    std::size_t end = 0;
    while (q.claim(begin, end)) {
        for (std::size_t i = begin; i < end; ++i) ++seen[i];
    }
    for (const int n : seen) EXPECT_EQ(n, 1);
    EXPECT_FALSE(q.claim(begin, end));  // stays exhausted
}

TEST(shard_queue, zero_chunk_is_clamped)
{
    par::shard_queue q(3, 0);
    EXPECT_EQ(q.chunk(), 1u);
}

TEST(worker_pool, runs_every_job_exactly_once_across_workers)
{
    par::worker_pool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    constexpr std::size_t jobs = 997;  // prime: uneven chunking
    std::vector<std::atomic<int>> hits(jobs);
    pool.run(jobs, [&](std::size_t job, const par::worker_context&) {
        hits[job].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(worker_pool, worker_seed_streams_follow_split)
{
    par::worker_pool pool(3, /*root_seed=*/99);
    std::vector<std::uint64_t> streams(3, 0);
    pool.run(64, [&](std::size_t, const par::worker_context& ctx) {
        streams[ctx.worker_id] = ctx.seed_stream;
    });
    // Every worker that ran jobs reports sim::split(root, worker_id). Which
    // workers claim chunks is a scheduling accident (under TSan the spawned
    // threads can drain the queue before the caller joins in), so only the
    // stream values are pinned — plus that somebody ran.
    std::size_t participated = 0;
    for (std::size_t i = 0; i < 3; ++i) {
        if (streams[i] == 0) continue;
        ++participated;
        EXPECT_EQ(streams[i], sim::split(99, i)) << "worker " << i;
    }
    EXPECT_GE(participated, 1u);
}

TEST(worker_pool, is_reusable_across_runs)
{
    par::worker_pool pool(2);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> count{0};
        pool.run(20, [&](std::size_t, const par::worker_context&) { ++count; });
        EXPECT_EQ(count.load(), 20);
    }
}

TEST(worker_pool, lowest_index_exception_wins)
{
    par::worker_pool pool(4);
    try {
        pool.run(100, [&](std::size_t job, const par::worker_context&) {
            if (job % 10 == 3) {  // 3, 13, 23, ... all throw
                throw std::runtime_error("job " + std::to_string(job));
            }
        });
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "job 3");
    }
    // The pool survives a failed run.
    std::atomic<int> count{0};
    pool.run(8, [&](std::size_t, const par::worker_context&) { ++count; });
    EXPECT_EQ(count.load(), 8);
}

TEST(sweep, results_land_in_job_slots_any_worker_count)
{
    const auto square = [](std::size_t job, const par::worker_context&) {
        return static_cast<std::uint64_t>(job * job);
    };
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        par::sweep_options opt;
        opt.jobs = jobs;
        const auto out = par::sweep<std::uint64_t>(33, square, opt);
        ASSERT_EQ(out.size(), 33u);
        for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
    }
}

// --- witness cache ----------------------------------------------------------

TEST(witness_cache, miss_insert_hit_and_stats)
{
    par::result_cache<int> cache;
    const par::witness_key key{17, "plan", "021", "jskernel"};
    EXPECT_EQ(cache.lookup(key), nullptr);
    cache.insert(key, 42);
    const auto hit = cache.lookup(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 42);
    const auto stats = cache.snapshot();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(witness_cache, first_insert_wins)
{
    par::result_cache<int> cache;
    const par::witness_key key{1, "", "", "plain"};
    cache.insert(key, 7);
    cache.insert(key, 8);
    EXPECT_EQ(*cache.lookup(key), 7);
    EXPECT_EQ(cache.snapshot().entries, 1u);
}

TEST(witness_cache, fields_are_separated_in_the_hash)
{
    // ("ab","c") and ("a","bc") must be different keys *and* hashes.
    const par::witness_key a{0, "ab", "c", ""};
    const par::witness_key b{0, "a", "bc", ""};
    EXPECT_FALSE(a == b);
    EXPECT_NE(par::hash(a), par::hash(b));

    par::result_cache<int> cache;
    cache.insert(a, 1);
    EXPECT_EQ(cache.lookup(b), nullptr);
}

TEST(witness_cache, program_identity_is_part_of_the_key)
{
    // Two programs (CVEs) under the same (seed, plan, decisions, defense)
    // are different witnesses: a matrix sweep caches every CVE's
    // default-schedule trial under otherwise identical fields.
    par::witness_key a{17, "", "", "plain", "CVE-2014-1719"};
    par::witness_key b = a;
    b.program = "CVE-2018-5092";
    EXPECT_FALSE(a == b);
    EXPECT_NE(par::hash(a), par::hash(b));

    par::result_cache<int> cache;
    cache.insert(a, 1);
    EXPECT_EQ(cache.lookup(b), nullptr);
    cache.insert(b, 2);
    EXPECT_EQ(*cache.lookup(a), 1);
    EXPECT_EQ(*cache.lookup(b), 2);
}

TEST(witness_cache, digest_and_key_hash_are_pinned)
{
    // FNV-1a goldens: aggregate digests must be comparable across machines.
    EXPECT_EQ(par::fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(par::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(par::fnv1a("jskernel"), par::fnv1a(std::string("jskernel")));
    const par::witness_key k{17, "p", "d", "x"};
    EXPECT_EQ(par::hash(k), par::hash(k));
}

TEST(witness_cache, parallel_hammer)
{
    // TSan workload: every worker inserts and looks up overlapping keys.
    par::result_cache<std::uint64_t> cache;
    par::worker_pool pool(4);
    pool.run(512, [&](std::size_t job, const par::worker_context&) {
        par::witness_key key;
        key.seed = job % 31;  // forced collisions across workers
        key.decisions = std::to_string(job % 17);
        if (const auto hit = cache.lookup(key)) {
            EXPECT_EQ(*hit, (key.seed << 8) ^ (job % 17));
        } else {
            cache.insert(key, (key.seed << 8) ^ (job % 17));
        }
    });
    EXPECT_LE(cache.snapshot().entries, 31u * 17u);
}

// --- obs per-shard merge ----------------------------------------------------

TEST(obs_merge, counters_add_gauges_overwrite_histograms_fold)
{
    jsk::obs::registry a;
    jsk::obs::registry b;
    a.get_counter("tasks").inc(3);
    b.get_counter("tasks").inc(4);
    b.get_counter("only_b").inc(1);
    a.get_gauge("depth").set(2.0);
    b.get_gauge("depth").set(5.0);
    a.get_histogram("win").record(2);
    b.get_histogram("win").record(100);
    b.get_histogram("win").record(3);

    a.merge(b);
    EXPECT_EQ(a.get_counter("tasks").value(), 7u);
    EXPECT_EQ(a.get_counter("only_b").value(), 1u);
    EXPECT_DOUBLE_EQ(a.get_gauge("depth").value(), 5.0);  // canonical last wins
    EXPECT_EQ(a.get_histogram("win").count(), 3u);
    EXPECT_DOUBLE_EQ(a.get_histogram("win").sum(), 105.0);
    EXPECT_DOUBLE_EQ(a.get_histogram("win").max(), 100.0);
}

TEST(obs_merge, merge_order_reproduces_serial_bytes)
{
    // Serial run: one registry sees shard 1's samples then shard 2's.
    jsk::obs::registry serial;
    serial.get_counter("n").inc(1);
    serial.get_histogram("h").record(4);
    serial.get_counter("n").inc(2);
    serial.get_histogram("h").record(9);

    jsk::obs::registry shard1;
    shard1.get_counter("n").inc(1);
    shard1.get_histogram("h").record(4);
    jsk::obs::registry shard2;
    shard2.get_counter("n").inc(2);
    shard2.get_histogram("h").record(9);

    jsk::obs::registry merged;
    merged.merge(shard1);
    merged.merge(shard2);
    EXPECT_EQ(merged.to_json(), serial.to_json());
}

TEST(obs_merge, histogram_bound_mismatch_throws)
{
    jsk::obs::registry a;
    jsk::obs::registry b;
    a.get_histogram("h", {1.0, 2.0});
    b.get_histogram("h", {1.0, 3.0});
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(obs_merge, empty_histogram_merge_keeps_max_well_defined)
{
    jsk::obs::histogram a;
    jsk::obs::histogram b;
    b.record(7);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);
    jsk::obs::histogram c;
    a.merge(c);  // merging an empty shard changes nothing
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(obs_merge, sink_append_concatenates_and_dedupes_thread_names)
{
    jsk::obs::sink a;
    jsk::obs::sink b;
    a.instant(jsk::obs::category::task, 1, 10, "first");
    a.set_thread_name(1, "main");
    b.instant(jsk::obs::category::task, 2, 5, "second");
    b.set_thread_name(1, "imposter");
    b.set_thread_name(2, "worker");

    a.append(b);
    ASSERT_EQ(a.events().size(), 2u);
    EXPECT_EQ(a.events()[0].name, "first");
    EXPECT_EQ(a.events()[1].name, "second");
    ASSERT_EQ(a.thread_names().size(), 2u);
    EXPECT_EQ(a.thread_names()[0].second, "main");  // existing name wins
    EXPECT_EQ(a.thread_names()[1].second, "worker");
}

// --- cached program adapter -------------------------------------------------

sim::explore::program counting_program(std::atomic<int>& invocations, bool violated)
{
    return [&invocations, violated](sim::explore::controller&) {
        ++invocations;
        sim::explore::run_outcome out;
        out.violated = violated;
        if (violated) out.detail = "boom";
        return out;
    };
}

TEST(cached_program, tail_first_replays_hit_without_running)
{
    std::atomic<int> invocations{0};
    par::result_cache<sim::explore::run_outcome> cache;
    par::witness_key base;
    base.seed = 17;
    base.defense = "plain";
    const auto p =
        par::cached_program(counting_program(invocations, true), cache, base);

    const auto first = sim::explore::replay({}, p);
    EXPECT_TRUE(first.violated);
    EXPECT_EQ(invocations.load(), 1);

    const auto second = sim::explore::replay({}, p);
    EXPECT_TRUE(second.violated);
    EXPECT_EQ(second.detail, "boom");
    EXPECT_EQ(invocations.load(), 1);  // recalled, not re-simulated
    EXPECT_EQ(cache.snapshot().hits, 1u);
}

TEST(cached_program, random_walks_seed_the_cache_for_replays)
{
    std::atomic<int> invocations{0};
    par::result_cache<sim::explore::run_outcome> cache;
    const auto p = par::cached_program(counting_program(invocations, false), cache,
                                       par::witness_key{1, "", "", "plain"});

    // Walk 0 is tail-first (lookup + insert); walk 1 is a random tail, which
    // can't be looked up pre-run but still inserts its recorded witness.
    sim::explore::options opt;
    opt.max_schedules = 2;
    sim::explore::explore_random(p, opt);
    EXPECT_EQ(invocations.load(), 2);

    // The tail-first replay of the recorded witness hits the cache.
    sim::explore::replay({}, p);
    EXPECT_EQ(invocations.load(), 2);
    EXPECT_GE(cache.snapshot().hits, 1u);
}

// --- cache stats + iteration hook -------------------------------------------

TEST(result_cache, stats_pin_across_insert_and_recall)
{
    par::result_cache<int> cache;
    par::witness_key a{1, "", "", "plain", "cve-a"};
    par::witness_key b{2, "", "", "jskernel", "cve-b"};

    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
    cache.insert(a, 10, 100);
    // Key bytes are the serialized-form size: 8 (seed) + 4*4 (length
    // prefixes) + string contents. For `a` that is 24 + 5 + 5 = 34.
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytes(), 134u);
    EXPECT_EQ(par::serialize(a).size() + 100, 134u);

    // First-insert-wins: the losing insert charges nothing.
    cache.insert(a, 99, 5000);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytes(), 134u);
    EXPECT_EQ(*cache.lookup(a), 10);

    cache.insert(b, 20, 6);
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.bytes(), 134u + par::serialize(b).size() + 6);

    cache.lookup(a);
    cache.lookup(b);
    cache.lookup(par::witness_key{3, "", "", "plain", "miss"});
    const auto snap = cache.snapshot();
    EXPECT_EQ(snap.hits, 3u);  // one from the winner check above
    EXPECT_EQ(snap.misses, 1u);
    EXPECT_EQ(snap.entries, cache.entries());
    EXPECT_EQ(snap.bytes, cache.bytes());

    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
    EXPECT_EQ(cache.lookup(a), nullptr);
}

TEST(result_cache, for_each_sorted_visits_in_canonical_key_order)
{
    par::result_cache<int> cache;
    // Inserted out of canonical order on purpose.
    cache.insert(par::witness_key{9, "", "", "plain", "z"}, 3);
    cache.insert(par::witness_key{1, "", "", "plain", "b"}, 2);
    cache.insert(par::witness_key{1, "", "", "plain", "a"}, 1);

    std::vector<int> seen;
    std::string prev;
    cache.for_each_sorted([&](const par::witness_key& k, const int& v) {
        seen.push_back(v);
        const std::string bytes = par::serialize(k);
        EXPECT_LT(prev, bytes);  // strictly increasing serialized keys
        prev = bytes;
    });
    const std::vector<int> expected = {1, 2, 3};
    EXPECT_EQ(seen, expected);
}

}  // namespace
