// Deterministic-merge suite (ISSUE acceptance): the CVE-matrix and chaos
// sweeps must emit byte-identical aggregates at --jobs 1, 2 and 8, because
// every job is a pure function of its index and the merge walks results in
// canonical job order. Also pins: witness-cached sweeps over >= 2 CVEs match
// an *uncached* baseline byte-for-byte (the regression for cache keys that
// omit the program identity), and the wave-parallel DFS is jobs-invariant.
//
// Sized for tier-1: a trimmed walk count / cell product. The exhaustive
// sweeps stay in the `explore`-labelled suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/chaos_sweep.h"
#include "attacks/explore_sweep.h"
#include "par/cache.h"
#include "par/explore_par.h"
#include "par/pool.h"

namespace {

using namespace jsk;

std::string matrix_json_at(std::size_t jobs, std::uint64_t walks,
                           attacks::matrix_options base = {})
{
    base.jobs = jobs;
    return attacks::cve_matrix_json(attacks::explore_cve_matrix(walks, base));
}

TEST(par_determinism, cve_matrix_bytes_identical_at_jobs_1_2_8)
{
    attacks::matrix_options opt;
    opt.explore.seed = 101;
    const std::string serial = matrix_json_at(1, 2, opt);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(matrix_json_at(2, 2, opt), serial);
    EXPECT_EQ(matrix_json_at(8, 2, opt), serial);
}

TEST(par_determinism, cve_matrix_cached_resweep_matches_uncached_baseline)
{
    // The matrix covers every CVE, so this sweep is the aliasing regression
    // for the cache key's `program` field: before the key carried the CVE id,
    // one CVE's walk-0 outcome was recalled for every other CVE under the
    // same defense. The ground truth is an *uncached* serial run — comparing
    // two cached sweeps to each other would let identically-corrupted bytes
    // pass.
    attacks::matrix_options opt;
    opt.explore.seed = 101;
    const std::string baseline = matrix_json_at(1, 2, opt);

    par::result_cache<attacks::cve_trial_outcome> cache;
    opt.cache = &cache;
    EXPECT_EQ(matrix_json_at(1, 2, opt), baseline);
    const auto cold = cache.snapshot();
    EXPECT_GT(cold.entries, 0u);
    // Every cold lookup must miss: lookup keys (walk-0 and seeded) are
    // unique per (cve, defense, walk), and replay keys are insert-only. A
    // cold hit means two CVEs' trials shared a key — the aliasing this test
    // exists to catch, even when the recalled outcome happens to have the
    // same bytes.
    const std::uint64_t jobs_per_sweep = attacks::cve_ids().size() * 2 * 2;
    EXPECT_EQ(cold.hits, 0u);
    EXPECT_EQ(cold.misses, jobs_per_sweep);

    EXPECT_EQ(matrix_json_at(2, 2, opt), baseline);
    EXPECT_EQ(matrix_json_at(8, 2, opt), baseline);
    const auto warm = cache.snapshot();
    // The re-sweeps recall instead of re-simulating: every job's single
    // lookup hits, and no new entries appear.
    EXPECT_EQ(warm.hits, 2 * jobs_per_sweep);
    EXPECT_EQ(warm.misses, cold.misses);
    EXPECT_EQ(warm.entries, cold.entries);
}

TEST(par_determinism, chaos_matrix_bytes_identical_at_jobs_1_2_8)
{
    const auto cells = attacks::default_chaos_cells(/*cves=*/2, /*plans=*/3);
    ASSERT_EQ(cells.size(), 2u * 2u * 3u);
    attacks::chaos_matrix_options opt;
    opt.jobs = 1;
    const std::string serial = attacks::chaos_matrix_json(run_chaos_matrix(cells, opt));
    opt.jobs = 2;
    EXPECT_EQ(attacks::chaos_matrix_json(run_chaos_matrix(cells, opt)), serial);
    opt.jobs = 8;
    EXPECT_EQ(attacks::chaos_matrix_json(run_chaos_matrix(cells, opt)), serial);
}

TEST(par_determinism, chaos_matrix_cached_resweep_matches_uncached_baseline)
{
    // >= 2 CVEs is load-bearing: default_chaos_cells gives every cell the
    // same browser_seed, so before the key carried cell.cve, CVE #2's cells
    // recalled CVE #1's cached results. The uncached run is the ground truth.
    const auto cells = attacks::default_chaos_cells(/*cves=*/2, /*plans=*/2);
    attacks::chaos_matrix_options opt;
    opt.jobs = 1;
    const std::string baseline = attacks::chaos_matrix_json(run_chaos_matrix(cells, opt));

    par::result_cache<attacks::chaos_cell_result> cache;
    opt.jobs = 2;
    opt.cache = &cache;
    const std::string first = attacks::chaos_matrix_json(run_chaos_matrix(cells, opt));
    EXPECT_EQ(first, baseline);
    const auto cold = cache.snapshot();
    EXPECT_EQ(cold.entries, cells.size());
    EXPECT_EQ(cold.hits, 0u);

    opt.jobs = 4;
    const std::string second = attacks::chaos_matrix_json(run_chaos_matrix(cells, opt));
    EXPECT_EQ(second, baseline);
    EXPECT_EQ(cache.snapshot().hits, cells.size());
    EXPECT_EQ(cache.snapshot().entries, cells.size());
}

TEST(par_determinism, chaos_matrix_merges_per_shard_metrics)
{
    const auto cells = attacks::default_chaos_cells(/*cves=*/1, /*plans=*/2);
    attacks::chaos_matrix_options opt;
    opt.jobs = 2;
    const auto m = run_chaos_matrix(cells, opt);
    ASSERT_EQ(m.results.size(), cells.size());
    // The fold must equal the sum of the per-shard registries.
    std::uint64_t tasks = 0;
    for (const auto& r : m.results) {
        obs::registry shard = r.metrics;  // per-shard instance, never shared
        tasks += shard.get_counter("sim.tasks_executed").value();
    }
    obs::registry merged = m.merged_metrics;
    EXPECT_EQ(merged.get_counter("sim.tasks_executed").value(), tasks);
    EXPECT_GT(tasks, 0u);
}

TEST(par_determinism, wave_dfs_is_jobs_invariant)
{
    const auto program =
        attacks::cve_trigger_program("CVE-2014-1719", /*with_jskernel=*/false);
    par::explore_options opt;
    opt.base.max_schedules = 24;
    opt.base.preemption_budget = 1;

    opt.jobs = 2;
    const auto a = par::explore_dfs(program, opt);
    opt.jobs = 8;
    const auto b = par::explore_dfs(program, opt);

    EXPECT_EQ(a.schedules_run, b.schedules_run);
    EXPECT_EQ(a.pruned, b.pruned);
    EXPECT_EQ(a.exhausted, b.exhausted);
    ASSERT_EQ(a.failing.has_value(), b.failing.has_value());
    if (a.failing) {
        EXPECT_EQ(a.failing->str(), b.failing->str());
        EXPECT_EQ(a.failure_detail, b.failure_detail);
    }
    EXPECT_GT(a.schedules_run, 0u);
}

TEST(par_determinism, wave_dfs_counts_pinned_across_jobs_with_and_without_dpor)
{
    // The needle program violates mid-tree (run 94 plain, run 4 under DPOR),
    // so these pins exercise both merge rules the wave driver must honor:
    // schedules_run is charged only up to and including the canonical first
    // violation, and pruned folds only the completed runs preceding it —
    // runs after the winner in an already-dispatched wave contribute nothing.
    const auto program = attacks::needle_search_program(10);
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        par::explore_options opt;
        opt.base.max_schedules = 100'000;
        opt.jobs = jobs;
        const auto plain = par::explore_dfs(program, opt);
        ASSERT_TRUE(plain.failing.has_value()) << "jobs " << jobs;
        EXPECT_EQ(plain.schedules_run, 94u) << "jobs " << jobs;
        EXPECT_EQ(plain.pruned, 0u) << "jobs " << jobs;
        EXPECT_EQ(plain.failing->str(), "11") << "jobs " << jobs;

        opt.base.dpor = true;
        const auto reduced = par::explore_dfs(program, opt);
        ASSERT_TRUE(reduced.failing.has_value()) << "jobs " << jobs;
        EXPECT_EQ(reduced.schedules_run, 4u) << "jobs " << jobs;
        EXPECT_EQ(reduced.pruned, 135u) << "jobs " << jobs;
        EXPECT_EQ(reduced.failing->str(), "11") << "jobs " << jobs;
    }
}

TEST(par_determinism, wave_dfs_jobs_1_is_the_serial_path)
{
    const auto program =
        attacks::cve_trigger_program("CVE-2014-1719", /*with_jskernel=*/false);
    par::explore_options opt;
    opt.base.max_schedules = 12;
    opt.base.preemption_budget = 1;
    opt.jobs = 1;
    const auto wave = par::explore_dfs(program, opt);
    const auto serial = sim::explore::explore_dfs(program, opt.base);
    EXPECT_EQ(wave.schedules_run, serial.schedules_run);
    EXPECT_EQ(wave.pruned, serial.pruned);
    EXPECT_EQ(wave.exhausted, serial.exhausted);
    EXPECT_EQ(wave.failing.has_value(), serial.failing.has_value());
}

}  // namespace
