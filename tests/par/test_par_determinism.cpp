// Deterministic-merge suite (ISSUE acceptance): the CVE-matrix and chaos
// sweeps must emit byte-identical aggregates at --jobs 1, 2 and 8, because
// every job is a pure function of its index and the merge walks results in
// canonical job order. Also pins: witness-cached re-sweeps produce the same
// bytes (with hits), and the wave-parallel DFS is jobs-invariant.
//
// Sized for tier-1: a trimmed walk count / cell product. The exhaustive
// sweeps stay in the `explore`-labelled suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/chaos_sweep.h"
#include "attacks/explore_sweep.h"
#include "par/cache.h"
#include "par/explore_par.h"
#include "par/pool.h"

namespace {

using namespace jsk;

std::string matrix_json_at(std::size_t jobs, std::uint64_t walks,
                           attacks::matrix_options base = {})
{
    base.jobs = jobs;
    return attacks::cve_matrix_json(attacks::explore_cve_matrix(walks, base));
}

TEST(par_determinism, cve_matrix_bytes_identical_at_jobs_1_2_8)
{
    attacks::matrix_options opt;
    opt.explore.seed = 101;
    const std::string serial = matrix_json_at(1, 2, opt);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(matrix_json_at(2, 2, opt), serial);
    EXPECT_EQ(matrix_json_at(8, 2, opt), serial);
}

TEST(par_determinism, cve_matrix_cached_resweep_same_bytes_with_hits)
{
    par::result_cache<attacks::cve_trial_outcome> cache;
    attacks::matrix_options opt;
    opt.explore.seed = 101;
    opt.cache = &cache;
    const std::string first = matrix_json_at(2, 2, opt);
    // Intra-sweep hits are legitimate (witness replays recall their own
    // recorded walk), so only pin that entries accumulated.
    const auto cold = cache.snapshot();
    EXPECT_GT(cold.entries, 0u);

    const std::string second = matrix_json_at(8, 2, opt);
    EXPECT_EQ(second, first);
    const auto warm = cache.snapshot();
    // The re-sweep recalls instead of re-simulating: hits grow by at least
    // one per cached entry, and no new entries appear.
    EXPECT_GE(warm.hits, cold.hits + cold.entries);
    EXPECT_EQ(warm.entries, cold.entries);
}

TEST(par_determinism, chaos_matrix_bytes_identical_at_jobs_1_2_8)
{
    const auto cells = attacks::default_chaos_cells(/*cves=*/2, /*plans=*/3);
    ASSERT_EQ(cells.size(), 2u * 2u * 3u);
    attacks::chaos_matrix_options opt;
    opt.jobs = 1;
    const std::string serial = attacks::chaos_matrix_json(run_chaos_matrix(cells, opt));
    opt.jobs = 2;
    EXPECT_EQ(attacks::chaos_matrix_json(run_chaos_matrix(cells, opt)), serial);
    opt.jobs = 8;
    EXPECT_EQ(attacks::chaos_matrix_json(run_chaos_matrix(cells, opt)), serial);
}

TEST(par_determinism, chaos_matrix_cached_resweep_same_bytes_with_hits)
{
    const auto cells = attacks::default_chaos_cells(/*cves=*/1, /*plans=*/2);
    par::result_cache<attacks::chaos_cell_result> cache;
    attacks::chaos_matrix_options opt;
    opt.jobs = 2;
    opt.cache = &cache;
    const std::string first = attacks::chaos_matrix_json(run_chaos_matrix(cells, opt));
    const auto cold = cache.snapshot();
    EXPECT_EQ(cold.entries, cells.size());

    opt.jobs = 4;
    const std::string second = attacks::chaos_matrix_json(run_chaos_matrix(cells, opt));
    EXPECT_EQ(second, first);
    EXPECT_EQ(cache.snapshot().hits, cells.size());
}

TEST(par_determinism, chaos_matrix_merges_per_shard_metrics)
{
    const auto cells = attacks::default_chaos_cells(/*cves=*/1, /*plans=*/2);
    attacks::chaos_matrix_options opt;
    opt.jobs = 2;
    const auto m = run_chaos_matrix(cells, opt);
    ASSERT_EQ(m.results.size(), cells.size());
    // The fold must equal the sum of the per-shard registries.
    std::uint64_t tasks = 0;
    for (const auto& r : m.results) {
        obs::registry shard = r.metrics;  // per-shard instance, never shared
        tasks += shard.get_counter("sim.tasks_executed").value();
    }
    obs::registry merged = m.merged_metrics;
    EXPECT_EQ(merged.get_counter("sim.tasks_executed").value(), tasks);
    EXPECT_GT(tasks, 0u);
}

TEST(par_determinism, wave_dfs_is_jobs_invariant)
{
    const auto program =
        attacks::cve_trigger_program("CVE-2014-1719", /*with_jskernel=*/false);
    par::explore_options opt;
    opt.base.max_schedules = 24;
    opt.base.preemption_budget = 1;

    opt.jobs = 2;
    const auto a = par::explore_dfs(program, opt);
    opt.jobs = 8;
    const auto b = par::explore_dfs(program, opt);

    EXPECT_EQ(a.schedules_run, b.schedules_run);
    EXPECT_EQ(a.pruned, b.pruned);
    EXPECT_EQ(a.exhausted, b.exhausted);
    ASSERT_EQ(a.failing.has_value(), b.failing.has_value());
    if (a.failing) {
        EXPECT_EQ(a.failing->str(), b.failing->str());
        EXPECT_EQ(a.failure_detail, b.failure_detail);
    }
    EXPECT_GT(a.schedules_run, 0u);
}

TEST(par_determinism, wave_dfs_jobs_1_is_the_serial_path)
{
    const auto program =
        attacks::cve_trigger_program("CVE-2014-1719", /*with_jskernel=*/false);
    par::explore_options opt;
    opt.base.max_schedules = 12;
    opt.base.preemption_budget = 1;
    opt.jobs = 1;
    const auto wave = par::explore_dfs(program, opt);
    const auto serial = sim::explore::explore_dfs(program, opt.base);
    EXPECT_EQ(wave.schedules_run, serial.schedules_run);
    EXPECT_EQ(wave.pruned, serial.pruned);
    EXPECT_EQ(wave.exhausted, serial.exhausted);
    EXPECT_EQ(wave.failing.has_value(), serial.failing.has_value());
}

}  // namespace
