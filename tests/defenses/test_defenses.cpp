// Unit tests for the comparator defenses' mechanisms.
#include <gtest/gtest.h>

#include "defenses/defense.h"

namespace {

using namespace jsk;
namespace sim = jsk::sim;
namespace rt = jsk::rt;

TEST(defenses_registry, all_six_columns_exist)
{
    const auto ids = defenses::all_defense_ids();
    ASSERT_EQ(ids.size(), 6u);
    for (const auto id : ids) {
        auto def = defenses::make_defense(id);
        ASSERT_NE(def, nullptr);
        EXPECT_EQ(def->name(), defenses::to_string(id));
    }
}

TEST(defense_tor, clock_is_coarsened_to_100ms)
{
    rt::browser b(rt::chrome_profile());
    auto def = defenses::make_defense(defenses::defense_id::tor_browser);
    def->install(b);
    double reading = -1.0;
    b.main().post_task(0, [&] {
        b.main().consume(250 * sim::ms);
        reading = b.main().apis().performance_now();
    });
    b.run();
    EXPECT_DOUBLE_EQ(reading, 200.0);  // floored to the 100 ms grid
}

TEST(defense_fuzzyfox, clock_readings_are_fuzzed_per_call)
{
    rt::browser b(rt::chrome_profile());
    auto def = defenses::make_defense(defenses::defense_id::fuzzyfox, 3);
    def->install(b);
    std::vector<double> readings;
    b.main().post_task(0, [&] {
        for (int i = 0; i < 4; ++i) readings.push_back(b.main().apis().performance_now());
    });
    b.run();
    ASSERT_EQ(readings.size(), 4u);
    // Same instant, but each reading got a fresh backdate.
    EXPECT_NE(readings[0], readings[1]);
}

TEST(defense_fuzzyfox, tasks_are_delayed_randomly)
{
    rt::browser b(rt::chrome_profile());
    auto def = defenses::make_defense(defenses::defense_id::fuzzyfox, 3);
    def->install(b);
    std::vector<double> fire_times;
    b.main().post_task(0, [&] {
        for (int i = 0; i < 6; ++i) {
            b.main().apis().set_timeout(
                [&] { fire_times.push_back(b.main().now_ms_raw()); }, 10 * sim::ms);
        }
    });
    b.run();
    ASSERT_EQ(fire_times.size(), 6u);
    // At least one timer was pushed visibly past its nominal deadline.
    double max_fire = 0.0;
    for (double t : fire_times) max_fire = std::max(max_fire, t);
    EXPECT_GT(max_fire, 11.0);
}

TEST(defense_chrome_zero, workers_are_polyfilled)
{
    rt::browser b(rt::chrome_profile());
    auto def = defenses::make_defense(defenses::defense_id::chrome_zero);
    def->install(b);
    EXPECT_TRUE(b.polyfill_workers());
    double worker_done_at = -1.0;
    b.register_worker_script("busy.js", [&](rt::context& ctx) {
        ctx.consume(5 * sim::ms);
        worker_done_at = ctx.now_ms_raw();
    });
    b.main().post_task(0, [&] {
        b.main().apis().create_worker("busy.js");
        b.main().consume(300 * sim::ms);
    });
    b.run();
    EXPECT_GT(worker_done_at, 300.0);  // no true parallelism
}

TEST(defense_deterfox, timers_stall_during_cross_origin_loads)
{
    rt::browser b(rt::chrome_profile());
    b.set_page_origin("https://attacker.example");
    auto def = defenses::make_defense(defenses::defense_id::deterfox);
    def->install(b);
    b.net().serve(rt::resource{"https://victim.example/big", "https://victim.example",
                               rt::resource_kind::data, 400'000, 0, 0, 0});
    int ticks_before_load_done = 0;
    bool load_done = false;
    b.main().post_task(0, [&] {
        auto& apis = b.main().apis();
        apis.fetch(
            "https://victim.example/big", {},
            [&](const rt::fetch_result&) { load_done = true; }, nullptr);
        auto tick = std::make_shared<std::function<void()>>();
        auto count = std::make_shared<int>(0);
        *tick = [&b, &ticks_before_load_done, &load_done, tick, count] {
            if (!load_done) ++ticks_before_load_done;
            if (++*count < 40) b.main().apis().set_timeout([tick] { (*tick)(); }, 0);
        };
        apis.set_timeout([tick] { (*tick)(); }, 0);
    });
    b.run();
    EXPECT_TRUE(load_done);
    // Every timer callback that would have run during the cross-origin load
    // was stalled until after it completed.
    EXPECT_EQ(ticks_before_load_done, 0);
}

TEST(defense_deterfox, same_origin_timers_run_normally)
{
    rt::browser b(rt::chrome_profile());
    auto def = defenses::make_defense(defenses::defense_id::deterfox);
    def->install(b);
    int ticks = 0;
    b.main().post_task(0, [&] {
        b.main().apis().set_timeout([&] { ++ticks; }, 1 * sim::ms);
    });
    b.run();
    EXPECT_EQ(ticks, 1);
}

TEST(defense_jskernel, kernel_is_booted_and_owns_clock)
{
    rt::browser b(rt::chrome_profile());
    auto def = defenses::make_defense(defenses::defense_id::jskernel);
    def->install(b);
    double reading = -1.0;
    b.main().post_task(0, [&] {
        b.main().consume(500 * sim::ms);
        reading = b.main().apis().performance_now();
    });
    b.run();
    EXPECT_LT(reading, 1.0);  // kernel time, not the 500 ms of physical time
}

}  // namespace
