// Random-program determinism fuzzing.
//
// A seeded generator produces random "web programs" — arbitrary mixes of
// timers, rAF, fetches, DOM loads, workers, messages and clock reads. Each
// program runs twice under JSKernel with *perturbed physical parameters*
// (different cost models, network latencies, server think times). The two
// kernel journals and every value the program observed must be identical:
// the observable timeline is a pure function of the program.
//
// The same harness also asserts the negative: under the plain browser the
// perturbation IS observable (otherwise the fuzzer would be vacuous).
//
// The program generator itself lives in workloads/random_program.h so the
// schedule-exploration audit (defenses/schedule_audit.h) fuzzes the same
// program space across interleavings.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "workloads/random_program.h"

namespace {

using namespace jsk;
namespace sim = jsk::sim;
namespace rt = jsk::rt;

/// Physical perturbation: scale cost-model knobs without touching program-
/// visible structure.
rt::browser_profile perturbed_profile(double factor)
{
    rt::browser_profile p = rt::chrome_profile();
    p.parse_ns_per_byte *= factor;
    p.net_ns_per_byte *= factor;
    p.net_rtt = static_cast<sim::time_ns>(p.net_rtt * factor);
    p.cheap_op_cost = static_cast<sim::time_ns>(p.cheap_op_cost * factor);
    p.worker_spawn_cost = static_cast<sim::time_ns>(p.worker_spawn_cost * factor);
    p.message_latency = static_cast<sim::time_ns>(p.message_latency * factor);
    return p;
}

struct fuzz_run {
    std::string observations;
    jsk::kernel::journal kernel_journal;
};

fuzz_run run_program(std::uint64_t program_seed, double physical_factor, bool with_kernel,
                     workloads::random_program_options opt = {})
{
    rt::browser b(perturbed_profile(physical_factor));
    std::unique_ptr<kernel::kernel> k;
    if (with_kernel) k = kernel::kernel::boot(b);

    auto log = std::make_shared<workloads::observation_log>();
    workloads::install_random_program(b, program_seed, log, opt);
    b.run_until(60 * sim::sec, 5'000'000);

    fuzz_run out;
    out.observations = log->str();
    if (k) out.kernel_journal = k->dispatch_journal();
    return out;
}

class program_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(program_fuzz, kernel_observations_invariant_under_physical_perturbation)
{
    const fuzz_run slow = run_program(GetParam(), 3.0, true);
    const fuzz_run fast = run_program(GetParam(), 0.5, true);
    EXPECT_EQ(slow.observations, fast.observations);
    const auto divergence = slow.kernel_journal.first_divergence(fast.kernel_journal);
    EXPECT_TRUE(slow.kernel_journal == fast.kernel_journal)
        << "journals diverge at index " << divergence << "\nslow:\n"
        << slow.kernel_journal.to_json() << "\nfast:\n" << fast.kernel_journal.to_json();
    EXPECT_EQ(slow.observations.find("CANCELLED_TIMER_FIRED"), std::string::npos);
    EXPECT_FALSE(slow.observations.empty());
}

TEST(program_fuzz_control, plain_browser_observations_do_vary_for_most_programs)
{
    // The negative control for the whole harness: without the kernel, a 6x
    // physical perturbation is visible to most random programs. (Individual
    // programs can legitimately miss it — e.g., all readings land on the
    // same quantized grid or behind the same busy window — so the assertion
    // is aggregate.)
    const std::vector<std::uint64_t> seeds{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233};
    int diverged = 0;
    for (const auto seed : seeds) {
        const fuzz_run slow = run_program(seed, 3.0, false);
        const fuzz_run fast = run_program(seed, 0.5, false);
        if (slow.observations != fast.observations) ++diverged;
    }
    EXPECT_GE(diverged, static_cast<int>(seeds.size() / 2))
        << "the perturbation should be observable without the kernel";
}

TEST_P(program_fuzz, kernel_runs_are_reproducible)
{
    const fuzz_run a = run_program(GetParam(), 1.0, true);
    const fuzz_run b = run_program(GetParam(), 1.0, true);
    EXPECT_EQ(a.observations, b.observations);
    EXPECT_TRUE(a.kernel_journal == b.kernel_journal);
}

TEST_P(program_fuzz, sab_mix_kernel_observations_invariant_under_perturbation)
{
    // With the SAB action family mixed in (unordered full/half accesses,
    // Atomics ops, a counter-bumping worker), the kernel's observable
    // timeline must still be a pure function of the program seed.
    workloads::random_program_options opt;
    opt.sab_mix = true;
    const fuzz_run slow = run_program(GetParam(), 3.0, true, opt);
    const fuzz_run fast = run_program(GetParam(), 0.5, true, opt);
    EXPECT_EQ(slow.observations, fast.observations);
    EXPECT_TRUE(slow.kernel_journal == fast.kernel_journal)
        << "journals diverge at index "
        << slow.kernel_journal.first_divergence(fast.kernel_journal);

    const fuzz_run again = run_program(GetParam(), 3.0, true, opt);
    EXPECT_EQ(again.observations, slow.observations);
}

TEST(program_fuzz_control, sab_mix_actually_changes_the_program_space)
{
    // Aggregate control: with the option on, the SAB action family rolls in
    // most programs (individual seeds can legitimately never draw it), and
    // the worker's counter round-trip is part of the observation stream.
    // With the option off, no SAB note can ever appear — the historical
    // goldens are untouched.
    const std::vector<std::uint64_t> seeds{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233};
    int with_sab = 0;
    for (const auto seed : seeds) {
        workloads::random_program_options opt;
        opt.sab_mix = true;
        const fuzz_run mixed = run_program(seed, 1.0, true, opt);
        if (mixed.observations.find("sab") != std::string::npos) ++with_sab;
        const fuzz_run plain = run_program(seed, 1.0, true);
        EXPECT_EQ(plain.observations.find("sab"), std::string::npos) << seed;
    }
    EXPECT_GE(with_sab, static_cast<int>(seeds.size() / 2));
}

INSTANTIATE_TEST_SUITE_P(seeds, program_fuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u,
                                           144u, 233u));

}  // namespace
