// Random-program determinism fuzzing.
//
// A seeded generator produces random "web programs" — arbitrary mixes of
// timers, rAF, fetches, DOM loads, workers, messages and clock reads. Each
// program runs twice under JSKernel with *perturbed physical parameters*
// (different cost models, network latencies, server think times). The two
// kernel journals and every value the program observed must be identical:
// the observable timeline is a pure function of the program.
//
// The same harness also asserts the negative: under the plain browser the
// perturbation IS observable (otherwise the fuzzer would be vacuous).
#include <gtest/gtest.h>

#include <sstream>

#include "kernel/kernel.h"
#include "sim/rng.h"

namespace {

using namespace jsk;
namespace sim = jsk::sim;
namespace rt = jsk::rt;

/// Everything a program observes, serialized.
struct observation_log {
    std::ostringstream out;
    void note(const std::string& what, double value)
    {
        out << what << "=" << value << ";";
    }
    void note(const std::string& what) { out << what << ";"; }
    [[nodiscard]] std::string str() const { return out.str(); }
};

struct program_env {
    rt::browser* b;
    std::shared_ptr<observation_log> log;
};

/// Issue one random action against the API surface. Returns the number of
/// future callbacks it registered (to bound the run).
void random_action(sim::rng& rng, const program_env& env, int depth);

void random_actions_in_callback(std::uint64_t seed, const program_env& env, int depth)
{
    if (depth > 2) return;
    sim::rng rng(seed);
    const auto n = rng.uniform(0, 2);
    for (std::int64_t i = 0; i < n; ++i) random_action(rng, env, depth);
}

void random_action(sim::rng& rng, const program_env& env, int depth)
{
    rt::browser& b = *env.b;
    auto log = env.log;
    const auto pick = rng.uniform(0, 9);
    const std::uint64_t sub_seed = rng.next_u64();
    switch (pick) {
        case 0: {  // timer
            const auto delay = rng.uniform(0, 40) * sim::ms;
            b.main().apis().set_timeout(
                [log, sub_seed, &b, depth] {
                    log->note("timer@" + std::to_string(b.main().apis().performance_now()));
                    random_actions_in_callback(sub_seed, program_env{&b, log}, depth + 1);
                },
                delay);
            log->note("set_timeout", static_cast<double>(delay / sim::ms));
            break;
        }
        case 1: {  // clock read
            log->note("now", b.main().apis().performance_now());
            break;
        }
        case 2: {  // compute (the "secret" work; costs perturbed between runs)
            b.main().consume(rng.uniform(0, 20) * sim::ms);
            log->note("compute");
            break;
        }
        case 3: {  // rAF
            b.main().apis().request_animation_frame([log](double ts) {
                log->note("raf", ts);
            });
            log->note("request_raf");
            break;
        }
        case 4: {  // fetch (urls r0..r4 registered by the harness)
            const std::string url =
                "https://site.example/r" + std::to_string(rng.uniform(0, 4));
            b.main().apis().fetch(
                url, {},
                [log, url, &b](const rt::fetch_result& r) {
                    log->note("fetched:" + url, static_cast<double>(r.bytes));
                    log->note("at", b.main().apis().performance_now());
                },
                [log, url](const rt::fetch_result&) { log->note("fetchfail:" + url); });
            log->note("fetch:" + url);
            break;
        }
        case 5: {  // DOM attribute round trip
            auto el = b.main().apis().create_element("div");
            b.main().apis().set_attribute(el, "k", std::to_string(rng.uniform(0, 99)));
            log->note("attr", std::stod(b.main().apis().get_attribute(el, "k")));
            break;
        }
        case 6: {  // worker round trip
            const double payload = static_cast<double>(rng.uniform(0, 1'000));
            auto w = b.main().apis().create_worker("echo.js");
            w->set_onmessage([log, &b](const rt::message_event& e) {
                log->note("echo", e.data.as_number());
                log->note("at", b.main().apis().performance_now());
            });
            w->post_message(rt::js_value{payload});
            log->note("spawn+post", payload);
            break;
        }
        case 7: {  // interval with self-clear
            auto count = std::make_shared<int>(0);
            auto id = std::make_shared<std::int64_t>(0);
            const auto period = rng.uniform(1, 10) * sim::ms;
            *id = b.main().apis().set_interval(
                [log, count, id, &b] {
                    log->note("intv", static_cast<double>(++*count));
                    if (*count >= 3) b.main().apis().clear_interval(*id);
                },
                period);
            log->note("set_interval", static_cast<double>(period / sim::ms));
            break;
        }
        case 8: {  // Date read
            log->note("date", b.main().apis().date_now());
            break;
        }
        default: {  // cancelled timer (must never fire)
            const auto t = b.main().apis().set_timeout(
                [log] { log->note("CANCELLED_TIMER_FIRED"); }, 15 * sim::ms);
            b.main().apis().clear_timeout(t);
            log->note("cancel_timer");
            break;
        }
    }
}

/// Physical perturbation: scale cost-model knobs without touching program-
/// visible structure.
rt::browser_profile perturbed_profile(double factor)
{
    rt::browser_profile p = rt::chrome_profile();
    p.parse_ns_per_byte *= factor;
    p.net_ns_per_byte *= factor;
    p.net_rtt = static_cast<sim::time_ns>(p.net_rtt * factor);
    p.cheap_op_cost = static_cast<sim::time_ns>(p.cheap_op_cost * factor);
    p.worker_spawn_cost = static_cast<sim::time_ns>(p.worker_spawn_cost * factor);
    p.message_latency = static_cast<sim::time_ns>(p.message_latency * factor);
    return p;
}

struct fuzz_run {
    std::string observations;
    jsk::kernel::journal kernel_journal;
};

fuzz_run run_program(std::uint64_t program_seed, double physical_factor, bool with_kernel)
{
    rt::browser b(perturbed_profile(physical_factor));
    std::unique_ptr<kernel::kernel> k;
    if (with_kernel) k = kernel::kernel::boot(b);

    for (int i = 0; i < 5; ++i) {
        b.net().serve(rt::resource{"https://site.example/r" + std::to_string(i),
                                   "https://site.example", rt::resource_kind::data,
                                   static_cast<std::size_t>(1'000 * (i + 1)), 0, 0, 0});
    }
    b.set_page_origin("https://site.example");
    b.register_worker_script("echo.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });

    auto log = std::make_shared<observation_log>();
    b.main().post_task(0, [&b, log, program_seed] {
        sim::rng rng(program_seed);
        const auto actions = 4 + rng.uniform(0, 8);
        for (std::int64_t i = 0; i < actions; ++i) {
            random_action(rng, program_env{&b, log}, 0);
        }
    });
    b.run_until(60 * sim::sec, 5'000'000);

    fuzz_run out;
    out.observations = log->str();
    if (k) out.kernel_journal = k->dispatch_journal();
    return out;
}

class program_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(program_fuzz, kernel_observations_invariant_under_physical_perturbation)
{
    const fuzz_run slow = run_program(GetParam(), 3.0, true);
    const fuzz_run fast = run_program(GetParam(), 0.5, true);
    EXPECT_EQ(slow.observations, fast.observations);
    const auto divergence = slow.kernel_journal.first_divergence(fast.kernel_journal);
    EXPECT_TRUE(slow.kernel_journal == fast.kernel_journal)
        << "journals diverge at index " << divergence << "\nslow:\n"
        << slow.kernel_journal.to_json() << "\nfast:\n" << fast.kernel_journal.to_json();
    EXPECT_EQ(slow.observations.find("CANCELLED_TIMER_FIRED"), std::string::npos);
    EXPECT_FALSE(slow.observations.empty());
}

TEST(program_fuzz_control, plain_browser_observations_do_vary_for_most_programs)
{
    // The negative control for the whole harness: without the kernel, a 6x
    // physical perturbation is visible to most random programs. (Individual
    // programs can legitimately miss it — e.g., all readings land on the
    // same quantized grid or behind the same busy window — so the assertion
    // is aggregate.)
    const std::vector<std::uint64_t> seeds{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233};
    int diverged = 0;
    for (const auto seed : seeds) {
        const fuzz_run slow = run_program(seed, 3.0, false);
        const fuzz_run fast = run_program(seed, 0.5, false);
        if (slow.observations != fast.observations) ++diverged;
    }
    EXPECT_GE(diverged, static_cast<int>(seeds.size() / 2))
        << "the perturbation should be observable without the kernel";
}

TEST_P(program_fuzz, kernel_runs_are_reproducible)
{
    const fuzz_run a = run_program(GetParam(), 1.0, true);
    const fuzz_run b = run_program(GetParam(), 1.0, true);
    EXPECT_EQ(a.observations, b.observations);
    EXPECT_TRUE(a.kernel_journal == b.kernel_journal);
}

INSTANTIATE_TEST_SUITE_P(seeds, program_fuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u,
                                           144u, 233u));

}  // namespace
