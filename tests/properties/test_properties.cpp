// Property-based tests: randomized sweeps over the core invariants.
#include <gtest/gtest.h>

#include <map>

#include "kernel/kernel.h"
#include "sim/rng.h"

namespace {

using namespace jsk;
namespace sim = jsk::sim;
namespace rt = jsk::rt;

// --- event queue vs a reference model -------------------------------------------

class event_queue_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(event_queue_property, matches_reference_model_under_random_ops)
{
    sim::rng rng(GetParam());
    kernel::event_queue queue;
    // Reference: map keyed by (predicted, id).
    std::map<std::pair<double, std::uint64_t>, std::uint64_t> reference;
    std::uint64_t next_id = 1;

    for (int step = 0; step < 2'000; ++step) {
        const auto op = rng.uniform(0, 3);
        if (op == 0 || reference.empty()) {  // push
            kernel::kevent ev;
            ev.id = next_id++;
            ev.predicted_time = static_cast<double>(rng.uniform(0, 500));
            queue.push(ev);
            reference.emplace(std::make_pair(ev.predicted_time, ev.id), ev.id);
        } else if (op == 1) {  // pop
            const auto popped = queue.pop();
            ASSERT_EQ(popped.id, reference.begin()->second);
            reference.erase(reference.begin());
        } else if (op == 2) {  // remove random live id
            const auto index = rng.uniform(0, static_cast<std::int64_t>(reference.size()) - 1);
            auto it = reference.begin();
            std::advance(it, index);
            ASSERT_TRUE(queue.remove(it->second));
            reference.erase(it);
        } else {  // lookup
            const auto index = rng.uniform(0, static_cast<std::int64_t>(reference.size()) - 1);
            auto it = reference.begin();
            std::advance(it, index);
            auto* found = queue.lookup(it->second);
            ASSERT_NE(found, nullptr);
            ASSERT_EQ(found->id, it->second);
        }
        ASSERT_EQ(queue.size(), reference.size());
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, event_queue_property,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99999u));

// --- simulation ordering properties ----------------------------------------------

class simulation_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(simulation_property, observed_starts_are_monotone_and_causal)
{
    sim::rng rng(GetParam());
    sim::simulation s;
    std::vector<sim::thread_id> threads;
    for (int i = 0; i < 4; ++i) threads.push_back(s.create_thread("t" + std::to_string(i)));

    std::vector<sim::time_ns> starts;
    s.add_task_observer([&](const sim::task_info& info) {
        ASSERT_GE(info.start, info.ready_at);  // causality: never before ready
        ASSERT_GE(info.end, info.start);
        starts.push_back(info.start);
    });
    for (int i = 0; i < 300; ++i) {
        const auto thread = threads[static_cast<std::size_t>(rng.uniform(0, 3))];
        const auto when = rng.uniform(0, 200) * sim::ms;
        const auto cost = rng.uniform(0, 3) * sim::ms;
        s.post(thread, when, [&s, cost] { s.consume(cost); });
    }
    s.run();
    ASSERT_EQ(starts.size(), 300u);
    for (std::size_t i = 1; i < starts.size(); ++i) {
        ASSERT_GE(starts[i], starts[i - 1]);  // global start-time order
    }
}

TEST_P(simulation_property, per_thread_tasks_never_overlap)
{
    sim::rng rng(GetParam() + 1);
    sim::simulation s;
    const auto t0 = s.create_thread("a");
    const auto t1 = s.create_thread("b");
    std::unordered_map<int, sim::time_ns> last_end;
    s.add_task_observer([&](const sim::task_info& info) {
        auto it = last_end.find(info.thread);
        if (it != last_end.end()) ASSERT_GE(info.start, it->second);
        last_end[info.thread] = info.end;
    });
    for (int i = 0; i < 200; ++i) {
        const auto thread = rng.chance(0.5) ? t0 : t1;
        s.post(thread, rng.uniform(0, 100) * sim::ms,
               [&s, c = rng.uniform(0, 5) * sim::ms] { s.consume(c); });
    }
    s.run();
}

INSTANTIATE_TEST_SUITE_P(seeds, simulation_property,
                         ::testing::Values(3u, 11u, 101u, 5000u));

// --- kernel determinism sweep ------------------------------------------------------

struct secret_pair {
    sim::time_ns a;
    sim::time_ns b;
};

class determinism_sweep : public ::testing::TestWithParam<secret_pair> {};

TEST_P(determinism_sweep, timer_tick_counts_are_secret_invariant)
{
    const auto run = [](sim::time_ns secret) {
        rt::browser b(rt::chrome_profile());
        auto k = kernel::kernel::boot(b);
        b.net().serve(rt::resource{"https://x/s", "https://x", rt::resource_kind::data, 256,
                                   0, 0, secret});
        auto ticks = std::make_shared<long>(0);
        auto done = std::make_shared<bool>(false);
        b.main().post_task(0, [&b, ticks, done] {
            auto tick = std::make_shared<std::function<void()>>();
            *tick = [&b, ticks, done, tick] {
                if (*done) return;
                ++*ticks;
                b.main().apis().set_timeout([tick] { (*tick)(); }, 0);
            };
            b.main().apis().set_timeout([tick] { (*tick)(); }, 0);
            b.main().apis().fetch(
                "https://x/s", {}, [done](const rt::fetch_result&) { *done = true; },
                nullptr);
        });
        b.run_until(20 * sim::sec);
        return *ticks;
    };
    EXPECT_EQ(run(GetParam().a), run(GetParam().b));
}

INSTANTIATE_TEST_SUITE_P(
    secrets, determinism_sweep,
    ::testing::Values(secret_pair{0, 1 * sim::sec}, secret_pair{1 * sim::ms, 700 * sim::ms},
                      secret_pair{5 * sim::ms, 6 * sim::ms},
                      secret_pair{100 * sim::ms, 101 * sim::ms},
                      secret_pair{250 * sim::us, 2 * sim::sec}));

// --- structured clone round-trip property --------------------------------------------

class clone_property : public ::testing::TestWithParam<std::uint64_t> {};

rt::js_value random_value(sim::rng& rng, int depth)
{
    const auto kind = rng.uniform(0, depth > 2 ? 3 : 5);
    switch (kind) {
        case 0: return rt::js_value{static_cast<double>(rng.uniform(-1000, 1000))};
        case 1: return rt::js_value{"s" + std::to_string(rng.uniform(0, 99))};
        case 2: return rt::js_value{rng.chance(0.5)};
        case 3: return rt::js_value{nullptr};
        case 4: {
            rt::js_array arr;
            const auto n = rng.uniform(0, 4);
            for (std::int64_t i = 0; i < n; ++i) arr.push_back(random_value(rng, depth + 1));
            return rt::js_value{std::move(arr)};
        }
        default: {
            rt::js_object obj;
            const auto n = rng.uniform(0, 4);
            for (std::int64_t i = 0; i < n; ++i) {
                obj["k" + std::to_string(i)] = random_value(rng, depth + 1);
            }
            return rt::js_value{std::move(obj)};
        }
    }
}

TEST_P(clone_property, clone_preserves_serialized_form)
{
    sim::rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        const rt::js_value original = random_value(rng, 0);
        const rt::js_value copy = rt::structured_clone(original);
        EXPECT_EQ(original.to_string(), copy.to_string());
        EXPECT_EQ(original.byte_size(), copy.byte_size());
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, clone_property, ::testing::Values(2u, 29u, 444u));

}  // namespace
