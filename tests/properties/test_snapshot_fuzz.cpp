// Snapshot-resume property fuzz: a world snapshotted at an arbitrary
// quiescent point mid-run, then resumed inside a fork, must replay the
// remainder of the run byte-for-byte identically to the same world run
// uninterrupted — journal, Chrome trace, observation log and the recorded
// schedule all included.
//
// Each round: (1) run a seeded random program under a random-tail
// controller and a sampled fault plan to a fixed horizon, uninterrupted,
// and record every oracle plus the full decision string; (2) rebuild the
// identical world inside a snapshot arena, replaying the recorded decisions
// as a prefix, run it only to a randomized split point, and seal there;
// (3) fork twice, resuming each fork to the horizon. Both forks must
// reproduce the uninterrupted oracles exactly, and the replay controller
// must never diverge — proving the sealed image captures the *complete*
// mid-run state (pending task queue, RNG streams, fault cursors, bus
// subscriptions) and that a restore loses none of it.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/arena.h"
#include "core/snapshot.h"
#include "core/world.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "obs/chrome_export.h"
#include "sim/explore.h"
#include "wm/model.h"
#include "workloads/random_program.h"

namespace {

using namespace jsk;

constexpr sim::time_ns k_horizon = 60 * sim::sec;

struct run_oracles {
    std::string decisions;
    std::string journal;
    std::string trace;
    std::string observations;
    std::uint64_t tasks_executed = 0;
    std::uint64_t faults_injected = 0;
};

core::world_recipe fuzz_recipe(bool boot_kernel)
{
    core::world_recipe recipe;
    recipe.with_trace = true;
    recipe.boot_kernel = boot_kernel;
    return recipe;
}

/// Everything a resumable trial owns, co-located so one arena anchor keeps
/// the whole graph (world + controller + injector + log) at stable
/// addresses across restores.
struct fuzz_world {
    core::world w;
    sim::explore::controller ctl;
    faults::injector inj;
    std::shared_ptr<workloads::observation_log> log;

    fuzz_world(const core::world_recipe& recipe, sim::explore::schedule prefix,
               sim::explore::controller::tail_policy tail, std::uint64_t walk_seed,
               std::uint64_t program_seed, const faults::plan& p,
               wm::mode model = wm::mode::seqcst,
               workloads::random_program_options popt = {})
        : w(recipe), ctl(std::move(prefix), tail, walk_seed), inj(p),
          log(std::make_shared<workloads::observation_log>())
    {
        // Assembly order is part of the determinism contract: controller
        // first (every task records), then the memory model (its reads-from
        // choices record into the same decision string), then the injector,
        // then the program.
        ctl.attach(w.browser.sim());
        w.browser.set_memory_model(model);
        w.browser.set_fault_injector(&inj);
        workloads::install_random_program(w.browser, program_seed, log, popt);
    }
};

run_oracles harvest(fuzz_world& fw)
{
    run_oracles o;
    sim::explore::schedule recorded = fw.ctl.decisions();
    recorded.trim();
    o.decisions = recorded.str();
    if (fw.w.kern) o.journal = fw.w.kern->dispatch_journal().to_json();
    o.trace = obs::to_chrome_trace(fw.w.sink);
    o.observations = fw.log->str();
    o.tasks_executed = fw.w.browser.sim().tasks_executed();
    o.faults_injected = fw.inj.injected();
    return o;
}

void expect_oracles_equal(const run_oracles& resumed, const run_oracles& base,
                          const std::string& label)
{
    EXPECT_EQ(resumed.decisions, base.decisions) << label;
    EXPECT_EQ(resumed.journal, base.journal) << label;
    EXPECT_EQ(resumed.trace, base.trace) << label;
    EXPECT_EQ(resumed.observations, base.observations) << label;
    EXPECT_EQ(resumed.tasks_executed, base.tasks_executed) << label;
    EXPECT_EQ(resumed.faults_injected, base.faults_injected) << label;
}

struct fuzz_case {
    std::uint64_t program_seed;
    bool boot_kernel;
    std::uint64_t plan_index;
    std::uint64_t walk_seed;
    std::uint64_t split_permille;  // snapshot point as a fraction of the horizon
    bool sab_mix = false;          // mix SAB traffic into the action set
    bool relaxed = false;          // run under the relaxed SAB memory model
};

TEST(snapshot_fuzz, mid_run_snapshots_resume_identically)
{
    if (!core::arena::supported()) {
        GTEST_SKIP() << "no arena address-space support on this host";
    }

    const std::vector<fuzz_case> cases = {
        {11, false, 0, 0xA11CEu, 137},
        {11, true, 1, 0xA11CEu, 137},
        {22, false, 2, 0xB0B0u, 500},
        {22, true, 3, 0xB0B0u, 643},
        {33, true, 4, 0xC0FFEEu, 881},
        {44, false, 5, 0xDEAD5EEDu, 29},
        // SAB traffic mixed in, under both memory models: the relaxed rows
        // prove a mid-run snapshot preserves the reads-from decision stream
        // (the recorded prefix replays value choices bit-for-bit too).
        {55, false, 0, 0x5AB5ABu, 401, /*sab_mix=*/true, /*relaxed=*/false},
        {55, true, 2, 0x5AB5ABu, 760, /*sab_mix=*/true, /*relaxed=*/false},
        {66, false, 1, 0x0DDBA11u, 233, /*sab_mix=*/true, /*relaxed=*/true},
        {66, true, 5, 0x0DDBA11u, 572, /*sab_mix=*/true, /*relaxed=*/true},
    };

    for (const auto& c : cases) {
        const std::string label = "seed=" + std::to_string(c.program_seed) +
                                  (c.boot_kernel ? " kernel" : " plain") +
                                  " plan=" + std::to_string(c.plan_index) +
                                  " split=" + std::to_string(c.split_permille) +
                                  (c.sab_mix ? " sab_mix" : "") +
                                  (c.relaxed ? " relaxed" : "");
        const faults::plan p = faults::plan::sample(c.plan_index);
        const core::world_recipe recipe = fuzz_recipe(c.boot_kernel);
        const wm::mode model = c.relaxed ? wm::mode::relaxed : wm::mode::seqcst;
        workloads::random_program_options popt;
        popt.sab_mix = c.sab_mix;

        // (1) Uninterrupted baseline: random tail records the schedule.
        run_oracles base;
        {
            fuzz_world fw(recipe, {}, sim::explore::controller::tail_policy::random,
                          c.walk_seed, c.program_seed, p, model, popt);
            fw.w.browser.run_until(k_horizon);
            base = harvest(fw);
        }
        ASSERT_FALSE(base.trace.empty()) << label;

        // (2) Same world rebuilt in an arena, replaying the recorded
        // schedule as a prefix, sealed at the randomized split point. The
        // seal point only requires in_task()==false — pending tasks and
        // half-consumed RNG/fault streams are part of the image.
        const sim::time_ns t_mid = (k_horizon / 1000) * c.split_permille;
        (void)p.str();  // field-table static must initialize off-arena
        const auto prefix = sim::explore::schedule::parse(base.decisions);
        ASSERT_TRUE(prefix.has_value()) << label;
        core::world_snapshot snap;
        bool quiescent_at_seal = false;
        snap.capture([&]() -> void* {
            auto* fw = new fuzz_world(recipe, *prefix,
                                      sim::explore::controller::tail_policy::first,
                                      0, c.program_seed, p, model, popt);
            fw->w.browser.run_until(t_mid);
            quiescent_at_seal = !fw->w.browser.sim().in_task();
            return fw;
        });
        EXPECT_TRUE(quiescent_at_seal) << label;
        auto& fw = *static_cast<fuzz_world*>(snap.anchor());

        // (3) Two forks resume to the horizon; both must match the
        // uninterrupted run, and the second fork re-proves the restore.
        for (int round = 0; round < 2; ++round) {
            run_oracles resumed;
            bool diverged = true;
            {
                core::fork fk(snap);
                fk.step([&] { fw.w.browser.run_until(k_horizon); });
                resumed = harvest(fw);  // scope off, pre-restore
                diverged = fw.ctl.replay_diverged();
            }
            expect_oracles_equal(resumed, base,
                                 label + " round=" + std::to_string(round));
            EXPECT_FALSE(diverged) << label << " round=" << round;
        }
    }
}

}  // namespace
