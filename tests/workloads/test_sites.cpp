// Unit tests for the synthetic workloads.
#include <gtest/gtest.h>

#include "defenses/defense.h"
#include "sim/stats.h"
#include "workloads/sites.h"

namespace {

using namespace jsk;
namespace sim = jsk::sim;
namespace rt = jsk::rt;

TEST(event_profiles, google_and_youtube_differ_in_heavy_tasks)
{
    const auto google = workloads::google_event_profile();
    const auto youtube = workloads::youtube_event_profile();
    auto max_cost = [](const workloads::event_profile& p) {
        sim::time_ns mx = 0;
        for (const auto& t : p.tasks) mx = std::max(mx, t.cost);
        return mx;
    };
    EXPECT_LT(max_cost(google), max_cost(youtube));
    EXPECT_GT(google.tasks.size(), 10u);
    EXPECT_GT(youtube.tasks.size(), 10u);
}

TEST(event_profiles, run_event_profile_busies_the_main_thread)
{
    rt::browser b(rt::chrome_profile());
    workloads::run_event_profile(b, workloads::google_event_profile());
    const auto before = b.sim().tasks_executed();
    b.run();
    EXPECT_GT(b.sim().tasks_executed(), before + 100);
}

TEST(site_generator, deterministic_for_same_rank_and_seed)
{
    const auto a = workloads::make_synthetic_site(7, 42);
    const auto b2 = workloads::make_synthetic_site(7, 42);
    EXPECT_EQ(a.script_urls, b2.script_urls);
    EXPECT_EQ(a.dom_nodes, b2.dom_nodes);
    EXPECT_EQ(a.resources.size(), b2.resources.size());
}

TEST(site_generator, ranks_produce_different_sites)
{
    const auto a = workloads::make_synthetic_site(1, 42);
    const auto b2 = workloads::make_synthetic_site(2, 42);
    EXPECT_NE(a.origin, b2.origin);
    const bool differs = a.script_urls.size() != b2.script_urls.size() ||
                         a.dom_nodes != b2.dom_nodes ||
                         a.image_urls.size() != b2.image_urls.size();
    EXPECT_TRUE(differs);
}

TEST(load_site, completes_and_reports_hero_before_onload)
{
    rt::browser b(rt::chrome_profile());
    const auto site = workloads::make_synthetic_site(3, 42);
    const auto result = workloads::load_site(b, site);
    EXPECT_GT(result.onload_ms, 0.0);
    EXPECT_GT(result.hero_ms, 0.0);
    EXPECT_LE(result.hero_ms, result.onload_ms);
}

TEST(load_site, bigger_sites_load_slower)
{
    // Construct two raptor sites: google (light) vs youtube (heavy).
    rt::browser light(rt::chrome_profile());
    const double google =
        workloads::load_site(light, workloads::raptor_site("google", "chrome")).hero_ms;
    rt::browser heavy(rt::chrome_profile());
    const double youtube =
        workloads::load_site(heavy, workloads::raptor_site("youtube", "chrome")).hero_ms;
    EXPECT_GT(youtube, google * 1.5);
}

TEST(raptor, firefox_render_factor_dominates)
{
    rt::browser chrome(rt::chrome_profile());
    const double c =
        workloads::load_site(chrome, workloads::raptor_site("google", "chrome")).hero_ms;
    rt::browser firefox(rt::firefox_profile());
    const double f =
        workloads::load_site(firefox, workloads::raptor_site("google", "firefox")).hero_ms;
    EXPECT_GT(f, c * 2.0);
}

TEST(raptor, unknown_site_throws)
{
    EXPECT_THROW(workloads::raptor_site("nope", "chrome"), std::invalid_argument);
}

TEST(dromaeo, all_tests_run_and_take_time)
{
    for (const auto& name : workloads::dromaeo_tests()) {
        rt::browser b(rt::chrome_profile());
        const auto result = workloads::run_dromaeo_test(b, name);
        EXPECT_GT(result.duration_ms, 0.0) << name;
        EXPECT_EQ(result.test, name);
    }
}

TEST(dromaeo, unknown_test_throws)
{
    rt::browser b(rt::chrome_profile());
    EXPECT_THROW(workloads::run_dromaeo_test(b, "nope"), std::invalid_argument);
}

TEST(dromaeo, compute_tests_are_kernel_neutral)
{
    rt::browser plain(rt::chrome_profile());
    const double base = workloads::run_dromaeo_test(plain, "math-cordic").duration_ms;
    rt::browser with(rt::chrome_profile());
    auto def = defenses::make_defense(defenses::defense_id::jskernel);
    def->install(with);
    const double kernel = workloads::run_dromaeo_test(with, "math-cordic").duration_ms;
    EXPECT_DOUBLE_EQ(base, kernel);
}

TEST(dromaeo, dom_attr_pays_kernel_interposition)
{
    rt::browser plain(rt::chrome_profile());
    const double base = workloads::run_dromaeo_test(plain, "dom-attr").duration_ms;
    rt::browser with(rt::chrome_profile());
    auto def = defenses::make_defense(defenses::defense_id::jskernel);
    def->install(with);
    const double kernel = workloads::run_dromaeo_test(with, "dom-attr").duration_ms;
    EXPECT_GT(kernel, base * 1.05);
    EXPECT_LT(kernel, base * 1.60);
}

TEST(worker_bench, spawning_more_workers_takes_longer)
{
    rt::browser few(rt::chrome_profile());
    const double t4 = workloads::run_worker_bench(few, 4);
    rt::browser many(rt::chrome_profile());
    const double t16 = workloads::run_worker_bench(many, 16);
    EXPECT_GT(t4, 0.0);
    EXPECT_GE(t16, t4);
}

TEST(compat_page, static_pages_are_visit_invariant)
{
    rt::browser a(rt::chrome_profile(), 1);
    const auto bag_a = workloads::build_compat_page(a, 123, false);
    rt::browser b2(rt::chrome_profile(), 2);
    const auto bag_b = workloads::build_compat_page(b2, 123, false);
    EXPECT_DOUBLE_EQ(sim::cosine_similarity(bag_a, bag_b), 1.0);
}

TEST(compat_page, dynamic_ads_differ_between_visits)
{
    rt::browser a(rt::chrome_profile(), 1);
    const auto bag_a = workloads::build_compat_page(a, 123, true);
    rt::browser b2(rt::chrome_profile(), 2);
    const auto bag_b = workloads::build_compat_page(b2, 124, true);
    EXPECT_LT(sim::cosine_similarity(bag_a, bag_b), 0.999);
}

}  // namespace
