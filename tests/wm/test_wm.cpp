// jsk::wm — relaxed SAB memory model tests (the `wm` ctest label).
//
// The two-sided litmus claims are the heart of this suite: for SB, MP and
// the tearing-amplified counter, explore_dfs must EXHAUST the bounded
// schedule tree with no violation under mode::seqcst (tasks are atomic in
// the DES, so schedules alone cover every seq-cst outcome — that run is the
// machine-checked "provably unreachable" half), while the identical program
// under mode::relaxed must yield a witness whose decision string replays
// byte-for-byte, survives ddmin shrinking, and degenerates to the seq-cst
// outcome when every reads-from choice is zeroed (candidate 0 is always the
// committed value).
//
// The matrix/service half pins the defense claim end-to-end: all 12 CVE
// rows stay kernel-blocked under --memory-model relaxed, the relaxed matrix
// JSON is byte-identical at any --jobs and under snapshot-served worlds,
// and "+relaxed"-tagged witness keys round-trip through the sweep service
// and its disk store unchanged.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/explore_sweep.h"
#include "attacks/wm_litmus.h"
#include "runtime/browser.h"
#include "sim/explore.h"
#include "sim/por.h"
#include "sim/time.h"
#include "svc/service.h"
#include "wm/model.h"

namespace {

using namespace jsk;
namespace explore = sim::explore;
namespace fs = std::filesystem;

explore::options plain_dfs()
{
    explore::options opt;
    opt.max_schedules = 4096;  // litmus trees are tiny; never trip the bound
    return opt;
}

/// Assert the DFS proved the outcome unreachable: the whole bounded tree
/// explored, no violating schedule anywhere in it.
void expect_unreachable(const explore::program& p, const char* what)
{
    const auto r = explore::explore_dfs(p, plain_dfs());
    EXPECT_TRUE(r.exhausted) << what;
    EXPECT_FALSE(r.failing.has_value())
        << what << ": unexpected witness " << r.failing->str() << " ("
        << r.failure_detail << ")";
}

/// Assert the DFS found a witness, and return it.
explore::schedule expect_witness(const explore::program& p, const char* what)
{
    const auto r = explore::explore_dfs(p, plain_dfs());
    EXPECT_TRUE(r.failing.has_value()) << what << ": no witness found";
    if (!r.failing.has_value()) return {};
    return *r.failing;
}

// --- model unit tests -------------------------------------------------------

TEST(wm_model, mode_names_parse_and_round_trip)
{
    EXPECT_EQ(wm::parse_mode("seqcst"), wm::mode::seqcst);
    EXPECT_EQ(wm::parse_mode("relaxed"), wm::mode::relaxed);
    EXPECT_EQ(wm::parse_mode("tso"), std::nullopt);
    EXPECT_STREQ(wm::to_string(wm::mode::seqcst), "seqcst");
    EXPECT_STREQ(wm::to_string(wm::mode::relaxed), "relaxed");
}

TEST(wm_model, program_tag_round_trips_through_witness_program_strings)
{
    EXPECT_EQ(wm::program_tag(wm::mode::seqcst), "");
    EXPECT_EQ(wm::program_tag(wm::mode::relaxed), "+relaxed");

    const auto [plain, m0] = wm::split_program_tag("CVE-2018-8174");
    EXPECT_EQ(plain, "CVE-2018-8174");
    EXPECT_EQ(m0, wm::mode::seqcst);

    const auto [stem, m1] = wm::split_program_tag("CVE-2018-8174+relaxed");
    EXPECT_EQ(stem, "CVE-2018-8174");
    EXPECT_EQ(m1, wm::mode::relaxed);
}

TEST(wm_model, half_writes_compose_and_read_back)
{
    // Build a slot from two 32-bit halves and read each part back.
    std::uint64_t bits = wm::slot_bits(0.0);
    bits = wm::apply_write(bits, 7.0, wm::part::lo);
    bits = wm::apply_write(bits, 9.0, wm::part::hi);
    EXPECT_EQ(wm::read_part(bits, wm::part::lo), 7.0);
    EXPECT_EQ(wm::read_part(bits, wm::part::hi), 9.0);

    // A full write replaces both halves.
    bits = wm::apply_write(bits, 1.5, wm::part::full);
    EXPECT_EQ(wm::read_part(bits, wm::part::full), 1.5);

    // Non-finite and out-of-range half values clamp to 0 rather than UB.
    EXPECT_EQ(wm::to_half(std::numeric_limits<double>::quiet_NaN()), 0u);
    EXPECT_EQ(wm::to_half(1e300), 0u);
}

// --- litmus: relaxed-only outcomes ------------------------------------------

TEST(wm_litmus, store_buffering_is_seqcst_unreachable)
{
    expect_unreachable(attacks::sb_litmus_program(wm::mode::seqcst), "SB/seqcst");
}

TEST(wm_litmus, store_buffering_is_relaxed_reachable_and_replays)
{
    const auto p = attacks::sb_litmus_program(wm::mode::relaxed);
    const auto witness = expect_witness(p, "SB/relaxed");

    // The witness must actually use the second search axis: at least one
    // nonzero digit is a reads-from (or schedule) deviation from default.
    auto trimmed = witness;
    trimmed.trim();
    EXPECT_FALSE(trimmed.choices.empty());

    // Byte-stable replay, twice (fresh worlds each time).
    EXPECT_TRUE(explore::replay(witness, p).violated);
    EXPECT_TRUE(explore::replay(witness, p).violated);

    // ddmin keeps the violation; the shrunk string replays too.
    auto small = explore::shrink(witness, p, plain_dfs());
    EXPECT_TRUE(explore::replay(small, p).violated);
    small.trim();
    EXPECT_LE(small.choices.size(), trimmed.choices.size());
}

TEST(wm_litmus, empty_decision_string_is_the_seqcst_outcome)
{
    // Candidate 0 of every reads-from choice is the committed value, so an
    // all-default run of the *relaxed* program observes exactly what seq-cst
    // would — the weak outcome needs explicit nonzero choices.
    const auto p = attacks::sb_litmus_program(wm::mode::relaxed);
    EXPECT_FALSE(explore::replay(explore::schedule{}, p).violated);
}

TEST(wm_litmus, message_passing_is_relaxed_only)
{
    expect_unreachable(attacks::mp_litmus_program(wm::mode::seqcst), "MP/seqcst");
    const auto p = attacks::mp_litmus_program(wm::mode::relaxed);
    const auto witness = expect_witness(p, "MP/relaxed");
    EXPECT_TRUE(explore::replay(witness, p).violated);
}

TEST(wm_litmus, kernel_shadow_blocks_message_passing_under_both_models)
{
    expect_unreachable(
        attacks::mp_litmus_program(wm::mode::seqcst, /*with_jskernel=*/true),
        "MP/seqcst+kernel");
    expect_unreachable(
        attacks::mp_litmus_program(wm::mode::relaxed, /*with_jskernel=*/true),
        "MP/relaxed+kernel");
}

TEST(wm_litmus, torn_counter_sample_is_relaxed_only)
{
    expect_unreachable(attacks::torn_counter_program(wm::mode::seqcst),
                       "torn/seqcst");
    const auto p = attacks::torn_counter_program(wm::mode::relaxed);
    const auto witness = expect_witness(p, "torn/relaxed");
    const auto out = explore::replay(witness, p);
    EXPECT_TRUE(out.violated);
    EXPECT_EQ(out.detail, "torn counter sample");
}

TEST(wm_litmus, kernel_shadow_blocks_torn_samples_under_both_models)
{
    expect_unreachable(
        attacks::torn_counter_program(wm::mode::seqcst, /*with_jskernel=*/true),
        "torn/seqcst+kernel");
    expect_unreachable(
        attacks::torn_counter_program(wm::mode::relaxed, /*with_jskernel=*/true),
        "torn/relaxed+kernel");
}

TEST(wm_litmus, dpor_preserves_the_relaxed_witness)
{
    // Sleep-set DPOR prunes schedule alternatives, never value alternatives;
    // the weak outcome must survive reduction.
    auto opt = plain_dfs();
    opt.dpor = true;
    const auto r =
        explore::explore_dfs(attacks::sb_litmus_program(wm::mode::relaxed), opt);
    ASSERT_TRUE(r.failing.has_value());
    EXPECT_TRUE(explore::replay(*r.failing,
                                attacks::sb_litmus_program(wm::mode::relaxed))
                    .violated);
}

// --- por: ordering-aware analysis -------------------------------------------

TEST(wm_por, race_count_reports_unordered_conflicts)
{
    // The SB litmus under seq-cst *mode* still performs unordered accesses —
    // a default-schedule run of it has racing unordered pairs, which is
    // exactly the signal that the program is worth re-sweeping under
    // --memory-model relaxed.
    explore::controller ctl;
    ctl.set_record_metadata(true);
    const auto p = attacks::sb_litmus_program(wm::mode::seqcst);
    (void)p(ctl);
    const sim::por::analysis an(ctl);
    EXPECT_GT(sim::por::race_count(ctl, an), 0u);
}

TEST(wm_por, seqcst_accesses_synchronize_instead_of_racing)
{
    // The same communication shape through Atomics: the seq-cst total order
    // contributes synchronizes-with edges, so no pair is a race.
    const explore::program p = [](explore::controller& ctl) {
        rt::browser b{rt::chrome_profile(), 23};
        rt::context& wa = b.create_context("wa", rt::context_kind::worker);
        rt::context& wb = b.create_context("wb", rt::context_kind::worker);
        ctl.attach(b.sim());
        b.set_memory_model(wm::mode::relaxed);
        auto buf = b.main().apis().create_shared_buffer(2);
        wa.post_task(5 * sim::ms, [&] {
            wa.apis().atomics_store(buf, 0, 1.0);
            (void)wa.apis().atomics_load(buf, 1);
        });
        wb.post_task(5 * sim::ms, [&] {
            wb.apis().atomics_store(buf, 1, 1.0);
            (void)wb.apis().atomics_load(buf, 0);
        });
        b.run();
        return explore::run_outcome{};
    };
    explore::controller ctl;
    ctl.set_record_metadata(true);
    (void)p(ctl);
    const sim::por::analysis an(ctl);
    EXPECT_EQ(sim::por::race_count(ctl, an), 0u);
}

// --- the 12-CVE matrix under the relaxed model ------------------------------

TEST(wm_matrix, all_cves_stay_kernel_blocked_under_relaxed)
{
    attacks::matrix_options opt;
    opt.model = wm::mode::relaxed;
    opt.jobs = 2;
    const auto rows = attacks::explore_cve_matrix(/*walks_per_cell=*/2, opt);
    ASSERT_EQ(rows.size(), attacks::cve_ids().size());
    for (const auto& row : rows) {
        EXPECT_GT(row.plain_triggered, 0u) << row.cve << " under relaxed";
        EXPECT_EQ(row.kernel_triggered, 0u) << row.cve << " under relaxed";
        EXPECT_TRUE(row.witness.has_value()) << row.cve;
    }
}

TEST(wm_matrix, relaxed_json_is_invariant_across_jobs_and_snapshots)
{
    auto run = [](std::size_t jobs, bool snapshots) {
        attacks::matrix_options opt;
        opt.model = wm::mode::relaxed;
        opt.jobs = jobs;
        opt.snapshots = snapshots;
        return attacks::cve_matrix_json(attacks::explore_cve_matrix(1, opt),
                                        wm::mode::relaxed);
    };
    const std::string baseline = run(1, true);
    EXPECT_NE(baseline.find("\"memory_model\":\"relaxed\""), std::string::npos);
    EXPECT_EQ(run(2, true), baseline);
    EXPECT_EQ(run(8, true), baseline);
    EXPECT_EQ(run(2, false), baseline);

    // And the model is part of the sweep's identity: the seqcst aggregate
    // serializes differently (no memory_model field).
    attacks::matrix_options sc;
    sc.jobs = 2;
    const auto sc_json =
        attacks::cve_matrix_json(attacks::explore_cve_matrix(1, sc));
    EXPECT_EQ(sc_json.find("memory_model"), std::string::npos);
    EXPECT_NE(sc_json, baseline);
}

// --- svc: "+relaxed" witness keys round-trip --------------------------------

namespace {

svc::job relaxed_job(std::uint64_t client_id, const std::string& program,
                     const std::string& defense, const std::string& decisions = "")
{
    svc::job j;
    j.client_id = client_id;
    j.key.seed = 17;
    j.key.defense = defense;
    j.key.program = program;
    j.key.decisions = decisions;
    return j;
}

}  // namespace

TEST(wm_svc, relaxed_program_tags_validate_and_execute)
{
    const auto cves = attacks::cve_ids();
    svc::service s({});
    auto& sess = s.connect("wm");
    sess.submit(relaxed_job(1, cves[0] + "+relaxed", "plain"));
    sess.submit(relaxed_job(2, cves[0] + "+relaxed", "jskernel"));
    sess.submit(relaxed_job(3, cves[0], "plain"));
    const auto wave = sess.flush();
    ASSERT_EQ(wave.results.size(), 3u);

    bool saw_plain_relaxed = false;
    bool saw_kernel_relaxed = false;
    for (std::size_t i = 0; i < wave.jobs.size(); ++i) {
        const auto& key = wave.jobs[i].key;
        if (key.program == cves[0] + "+relaxed") {
            if (key.defense == "plain") {
                EXPECT_TRUE(wave.results[i].triggered);
                saw_plain_relaxed = true;
            } else {
                EXPECT_FALSE(wave.results[i].triggered);
                saw_kernel_relaxed = true;
            }
        }
    }
    EXPECT_TRUE(saw_plain_relaxed);
    EXPECT_TRUE(saw_kernel_relaxed);
    EXPECT_NE(wave.merged_json.find("+relaxed"), std::string::npos);

    // The tag is validated against the stem: an unknown program stays
    // unknown with the tag attached.
    EXPECT_THROW(sess.submit(relaxed_job(9, "CVE-0000-0000+relaxed", "plain")),
                 std::invalid_argument);
}

TEST(wm_svc, relaxed_witnesses_replay_through_the_disk_store)
{
    const auto cves = attacks::cve_ids();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const auto dir = (fs::path(::testing::TempDir()) /
                      (std::string("jsk_wm_svc_") + info->name()))
                         .string();
    fs::remove_all(dir);

    std::vector<svc::job> jobs = {relaxed_job(1, cves[0] + "+relaxed", "plain"),
                                  relaxed_job(2, cves[1] + "+relaxed", "jskernel")};

    std::string first_json;
    std::string decisions;
    {
        svc::service_options opt;
        opt.store_dir = dir;
        svc::service s(opt);
        auto& sess = s.connect("wm");
        for (const auto& j : jobs) sess.submit(j);
        const auto wave = sess.flush();
        EXPECT_EQ(wave.trials, 2u);
        first_json = wave.merged_json;
        for (std::size_t i = 0; i < wave.jobs.size(); ++i) {
            if (wave.jobs[i].key.defense == "plain") {
                decisions = wave.results[i].decisions;
            }
        }
    }
    {
        // A new incarnation over the same store recalls — byte-identical
        // aggregate, zero fresh simulation (the cross-process replay claim).
        svc::service_options opt;
        opt.store_dir = dir;
        svc::service s(opt);
        auto& sess = s.connect("wm");
        for (const auto& j : jobs) sess.submit(j);
        const auto wave = sess.flush();
        EXPECT_EQ(wave.trials, 0u);
        EXPECT_EQ(wave.hits_disk, 2u);
        EXPECT_EQ(wave.merged_json, first_json);
    }
    {
        // Replaying the harvested decision string (schedule + rf choices) as
        // a prescribed prefix reproduces the same outcome and harvest.
        svc::service s({});
        auto& sess = s.connect("wm");
        sess.submit(relaxed_job(1, cves[0] + "+relaxed", "plain", decisions));
        const auto wave = sess.flush();
        ASSERT_EQ(wave.results.size(), 1u);
        EXPECT_TRUE(wave.results[0].triggered);
        EXPECT_EQ(wave.results[0].decisions, decisions);
    }
    fs::remove_all(dir);
}

}  // namespace
