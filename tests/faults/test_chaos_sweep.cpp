// The chaos sweep (ISSUE acceptance): the CVE matrix and random programs
// re-run under ≥200 sampled (seed, fault-plan) pairs, asserting
//
//   1. replay — same seed + same plan produce a byte-identical kernel
//      journal and obs trace (and observation log for random programs);
//   2. no false negatives — a CVE that triggers fault-free on the plain
//      browser still triggers under every non-destructive plan, and JSKernel
//      still blocks it under every non-destructive plan *and* under pure
//      network chaos (the retry hardening absorbs transient fetch failures);
//   3. liveness — no run exhausts the task cap: worlds quiesce before the
//      deadline even when faults strand work (the dispatcher watchdog
//      cancels stuck pending heads; test_hardening pins that mechanism).
//
// Destructive plans (worker crashes, dropped messages) may legitimately
// change *what the exploit manages to do* — an engine crash is outside the
// kernel's mediation boundary — so invariant 2 is scoped by
// plan::destructive(); invariants 1 and 3 hold under every plan.
//
// JSK_CHAOS_SMOKE=1 shrinks the sweep for sanitizer CI runs; the default
// sizing covers 12 CVEs x 2 modes x 9 plans = 216 pairs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "attacks/chaos_sweep.h"
#include "attacks/explore_sweep.h"
#include "faults/plan.h"

namespace {

using namespace jsk::attacks;
using jsk::faults::plan;

bool smoke_mode() { return std::getenv("JSK_CHAOS_SMOKE") != nullptr; }

std::vector<std::string> sweep_cves()
{
    std::vector<std::string> ids = cve_ids();
    if (smoke_mode() && ids.size() > 3) ids.resize(3);
    return ids;
}

std::vector<plan> sweep_plans()
{
    std::vector<plan> plans;
    const std::uint64_t count = smoke_mode() ? 3 : 9;
    for (std::uint64_t i = 0; i < count; ++i) plans.push_back(plan::sample(i));
    return plans;
}

/// Pure network chaos keeps kernel mediation intact: fetch failures are
/// retried/reported, never bypassed. sample() index%5==1 is network_chaos.
bool network_only(const plan& p)
{
    return p.worker_spawn_fail_bp == 0 && p.worker_crash_bp == 0 &&
           p.msg_drop_bp == 0;
}

TEST(chaos_sweep, cve_matrix_replays_detects_and_quiesces_under_faults)
{
    const auto cves = sweep_cves();
    const auto plans = sweep_plans();
    std::uint64_t pairs = 0;
    std::uint64_t total_faults = 0;

    for (const auto& cve : cves) {
        // Fault-free baselines scope the no-false-negative check.
        const chaos_trial_result plain_base = run_chaos_trial(cve, false, plan{});
        const chaos_trial_result kernel_base = run_chaos_trial(cve, true, plan{});
        EXPECT_FALSE(kernel_base.triggered) << cve << " escaped JSKernel fault-free";

        for (const plan& p : plans) {
            for (const bool with_kernel : {false, true}) {
                ++pairs;
                const chaos_trial_result r1 = run_chaos_trial(cve, with_kernel, p);
                const chaos_trial_result r2 = run_chaos_trial(cve, with_kernel, p);

                // 1. Replay: chaos is part of the deterministic world.
                EXPECT_EQ(r1.trace_json, r2.trace_json)
                    << cve << " trace diverged under " << p.str();
                EXPECT_EQ(r1.journal_json, r2.journal_json)
                    << cve << " journal diverged under " << p.str();
                EXPECT_EQ(r1.triggered, r2.triggered);

                // 3. Liveness: every run quiesces within the cap.
                EXPECT_FALSE(r1.hit_task_cap)
                    << cve << " hung under " << p.str();

                // 2. Detection: scoped by destructiveness (see file comment).
                if (!p.destructive()) {
                    if (with_kernel) {
                        EXPECT_FALSE(r1.triggered)
                            << cve << " escaped JSKernel under " << p.str();
                    } else {
                        EXPECT_EQ(r1.triggered, plain_base.triggered)
                            << cve << " detection changed under " << p.str();
                    }
                } else if (with_kernel && network_only(p)) {
                    EXPECT_FALSE(r1.triggered)
                        << cve << " escaped JSKernel under network chaos " << p.str();
                }
                total_faults += r1.faults_injected;
            }
        }
    }
    if (!smoke_mode()) EXPECT_GE(pairs, 200u);
    // The sweep must actually have exercised the injector.
    EXPECT_GT(total_faults, 0u);
}

TEST(chaos_sweep, random_programs_replay_byte_identically_under_faults)
{
    const std::uint64_t programs = smoke_mode() ? 2 : 4;
    const auto plans = sweep_plans();
    for (std::uint64_t seed = 1; seed <= programs; ++seed) {
        for (const plan& p : plans) {
            const chaos_trial_result r1 = run_chaos_program(seed, true, p);
            const chaos_trial_result r2 = run_chaos_program(seed, true, p);
            EXPECT_EQ(r1.observations, r2.observations)
                << "program " << seed << " observations diverged under " << p.str();
            EXPECT_EQ(r1.journal_json, r2.journal_json);
            EXPECT_EQ(r1.trace_json, r2.trace_json);
            EXPECT_FALSE(r1.hit_task_cap);
        }
    }
}

TEST(chaos_sweep, different_plans_produce_different_runs)
{
    // Sanity against a vacuous sweep: two different plans on the same seed
    // must actually diverge somewhere observable.
    const chaos_trial_result a = run_chaos_program(5, true, plan::perturb_only(1));
    const chaos_trial_result b = run_chaos_program(5, true, plan::full_chaos(2));
    EXPECT_NE(a.trace_json, b.trace_json);
}

}  // namespace
