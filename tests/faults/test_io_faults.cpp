// jsk::faults — the deterministic I/O fault domain: plan serialization,
// the family factories, injector determinism, and crash-point semantics.

#include <gtest/gtest.h>

#include <vector>

#include "faults/io.h"

namespace {

using namespace jsk;

// --- plan serialization -------------------------------------------------------

TEST(io_plan, str_parse_round_trips_every_family)
{
    const std::vector<faults::io_plan> plans = {
        faults::io_plan{},
        faults::io_plan::transient_only(7),
        faults::io_plan::disk_pressure(8),
        faults::io_plan::sync_failures(9),
        faults::io_plan::full_io_chaos(10),
    };
    for (const auto& p : plans) {
        EXPECT_EQ(faults::io_plan::parse(p.str()), p) << p.str();
    }
}

TEST(io_plan, parse_rejects_malformed_input)
{
    EXPECT_THROW(faults::io_plan::parse("bogus_key=1;"), std::invalid_argument);
    EXPECT_THROW(faults::io_plan::parse("seed"), std::invalid_argument);
    EXPECT_THROW(faults::io_plan::parse("seed=x;"), std::invalid_argument);
}

TEST(io_plan, null_plan_and_persistence_classification)
{
    EXPECT_TRUE(faults::io_plan{}.null_plan());
    EXPECT_FALSE(faults::io_plan::transient_only(1).null_plan());
    EXPECT_FALSE(faults::io_plan::transient_only(1).persistent());
    EXPECT_TRUE(faults::io_plan::disk_pressure(1).persistent());
    EXPECT_TRUE(faults::io_plan::sync_failures(1).persistent());
    EXPECT_TRUE(faults::io_plan::full_io_chaos(1).persistent());

    faults::io_plan crash_only;
    crash_only.crash_at = 3;
    EXPECT_FALSE(crash_only.null_plan());
    EXPECT_FALSE(crash_only.persistent());
}

TEST(io_plan, sample_walks_distinct_plans)
{
    std::vector<std::string> seen;
    for (std::uint64_t i = 0; i < 8; ++i) {
        const std::string s = faults::io_plan::sample(i).str();
        for (const auto& prev : seen) EXPECT_NE(s, prev) << "index " << i;
        seen.push_back(s);
    }
}

// --- injector determinism -----------------------------------------------------

TEST(io_injector, same_plan_same_decision_stream)
{
    const auto plan = faults::io_plan::full_io_chaos(42);
    faults::io_injector a(plan);
    faults::io_injector b(plan);
    for (int i = 0; i < 256; ++i) {
        const auto da = a.on_write(100);
        const auto db = b.on_write(100);
        EXPECT_EQ(da.kind, db.kind) << i;
        EXPECT_EQ(da.progress, db.progress) << i;
        EXPECT_EQ(a.on_flush(), b.on_flush()) << i;
        EXPECT_EQ(a.on_fsync(), b.on_fsync()) << i;
        EXPECT_EQ(a.on_rename(), b.on_rename()) << i;
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 0u) << "chaos plan must actually fire";
}

TEST(io_injector, seeds_decorrelate_sites)
{
    faults::io_injector a(faults::io_plan::full_io_chaos(1));
    faults::io_injector b(faults::io_plan::full_io_chaos(2));
    int differing = 0;
    for (int i = 0; i < 256; ++i) {
        if (a.on_write(100).kind != b.on_write(100).kind) ++differing;
    }
    EXPECT_GT(differing, 0) << "distinct seeds must yield distinct streams";
}

TEST(io_injector, null_plan_is_disabled_and_never_fires)
{
    faults::io_injector inj(faults::io_plan{});
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(inj.on_write(10).kind, faults::io_injector::write_fault::none);
        EXPECT_FALSE(inj.on_flush());
        EXPECT_FALSE(inj.on_fsync());
        EXPECT_FALSE(inj.on_rename());
    }
    EXPECT_EQ(inj.injected(), 0u);
}

// --- crash points -------------------------------------------------------------

TEST(io_injector, crash_at_kills_exactly_the_kth_boundary)
{
    faults::io_plan plan;
    plan.crash_at = 3;
    faults::io_injector inj(plan);
    EXPECT_NO_THROW(inj.crash_point("a"));
    EXPECT_NO_THROW(inj.crash_point("b"));
    EXPECT_THROW(inj.crash_point("c"), faults::crash_error);
    EXPECT_EQ(inj.crash_points_seen(), 3u);
    // The counter keeps advancing but never fires twice.
    EXPECT_NO_THROW(inj.crash_point("d"));
}

TEST(io_injector, crash_count_only_counts_without_dying)
{
    faults::io_plan plan;
    plan.crash_at = faults::crash_count_only;
    faults::io_injector inj(plan);
    EXPECT_TRUE(inj.enabled());
    for (int i = 0; i < 1000; ++i) EXPECT_NO_THROW(inj.crash_point("x"));
    EXPECT_EQ(inj.crash_points_seen(), 1000u);
}

TEST(io_injector, crash_error_is_not_an_io_error)
{
    // The durability path catches io_error to degrade gracefully; it must
    // never be able to swallow a simulated process death.
    faults::io_plan plan;
    plan.crash_at = 1;
    faults::io_injector inj(plan);
    try {
        inj.crash_point("site");
        FAIL() << "must throw";
    } catch (const std::runtime_error& e) {
        EXPECT_EQ(dynamic_cast<const faults::crash_error*>(&e) != nullptr, true);
        EXPECT_NE(std::string(e.what()).find("site"), std::string::npos);
    }
}

}  // namespace
