// Unit tests for jsk::faults — plan codec, injector determinism, and the
// browser-level interposition sites (fetch faults, channel faults, worker
// faults, clock skew).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faults/injector.h"
#include "faults/plan.h"
#include "runtime/browser.h"

namespace {

using namespace jsk::faults;
namespace rt = jsk::rt;
namespace sim = jsk::sim;

// --- plan codec ------------------------------------------------------------

TEST(fault_plan, codec_round_trips_every_family)
{
    for (std::uint64_t seed : {1ull, 7ull, 12345ull}) {
        for (const plan& p :
             {plan{}, plan::perturb_only(seed), plan::network_chaos(seed),
              plan::worker_chaos(seed), plan::channel_chaos(seed),
              plan::full_chaos(seed)}) {
            EXPECT_EQ(plan::parse(p.str()), p) << p.str();
        }
    }
    for (std::uint64_t i = 0; i < 25; ++i) {
        const plan p = plan::sample(i);
        EXPECT_EQ(plan::parse(p.str()), p) << "sample " << i;
    }
}

TEST(fault_plan, parse_rejects_malformed_input)
{
    EXPECT_THROW(plan::parse("seed"), std::invalid_argument);            // no '='
    EXPECT_THROW(plan::parse("seed=1"), std::invalid_argument);          // no ';'
    EXPECT_THROW(plan::parse("bogus_key=1;"), std::invalid_argument);    // unknown key
    EXPECT_THROW(plan::parse("seed=banana;"), std::invalid_argument);    // bad number
}

TEST(fault_plan, null_and_destructive_classification)
{
    EXPECT_TRUE(plan{}.null_plan());
    EXPECT_FALSE(plan{}.destructive());

    const plan perturb = plan::perturb_only(3);
    EXPECT_FALSE(perturb.null_plan());
    EXPECT_FALSE(perturb.destructive());  // spikes/dups/delays/skew only

    EXPECT_TRUE(plan::network_chaos(3).destructive());
    EXPECT_TRUE(plan::worker_chaos(3).destructive());
    EXPECT_TRUE(plan::channel_chaos(3).destructive());
    EXPECT_TRUE(plan::full_chaos(3).destructive());
}

TEST(fault_plan, sample_walk_varies_both_shape_and_seed)
{
    // Consecutive samples differ, and the family cycles with period 5.
    EXPECT_NE(plan::sample(0), plan::sample(1));
    EXPECT_NE(plan::sample(0), plan::sample(5));  // same shape, different seed
    EXPECT_NE(plan::sample(0).seed, plan::sample(5).seed);
    for (std::uint64_t i = 0; i < 10; ++i) EXPECT_FALSE(plan::sample(i).null_plan());
}

// --- injector --------------------------------------------------------------

TEST(fault_injector, null_plan_disables_the_injector)
{
    injector inj{plan{}};
    EXPECT_FALSE(inj.enabled());
    EXPECT_TRUE(injector{plan::full_chaos(1)}.enabled());
}

TEST(fault_injector, same_plan_gives_identical_decision_streams)
{
    const plan p = plan::full_chaos(42);
    injector a{p};
    injector b{p};
    for (int i = 0; i < 200; ++i) {
        const auto fa = a.on_fetch(10 * sim::ms);
        const auto fb = b.on_fetch(10 * sim::ms);
        EXPECT_EQ(fa.kind, fb.kind);
        EXPECT_EQ(fa.extra_latency, fb.extra_latency);
        EXPECT_EQ(fa.fail_after, fb.fail_after);
        EXPECT_EQ(a.on_worker_spawn(), b.on_worker_spawn());
        EXPECT_EQ(a.worker_crash_delay(), b.worker_crash_delay());
        const auto ma = a.on_message();
        const auto mb = b.on_message();
        EXPECT_EQ(ma.kind, mb.kind);
        EXPECT_EQ(ma.delay, mb.delay);
    }
    EXPECT_EQ(a.decisions(), b.decisions());
    EXPECT_EQ(a.injected(), b.injected());
    // A chaotic plan exercised 200 times injects *something*.
    EXPECT_GT(a.injected(), 0u);
}

TEST(fault_injector, per_site_streams_are_independent)
{
    // Extra fetch decisions must not perturb the message stream: each site
    // consumes its own seeded sequence.
    const plan p = plan::full_chaos(9);
    injector clean{p};
    injector noisy{p};
    std::vector<injector::msg_decision> expect_msgs;
    for (int i = 0; i < 50; ++i) expect_msgs.push_back(clean.on_message());
    for (int i = 0; i < 50; ++i) {
        (void)noisy.on_fetch(5 * sim::ms);
        (void)noisy.on_worker_spawn();
        const auto m = noisy.on_message();
        EXPECT_EQ(m.kind, expect_msgs[i].kind);
        EXPECT_EQ(m.delay, expect_msgs[i].delay);
    }
}

TEST(fault_injector, saturated_rates_always_fire)
{
    plan p;
    p.fetch_timeout_bp = 10'000;
    p.msg_drop_bp = 10'000;
    injector inj{p};
    for (int i = 0; i < 20; ++i) {
        const auto f = inj.on_fetch(30 * sim::ms);
        EXPECT_EQ(f.kind, injector::fetch_fault::timeout);
        EXPECT_EQ(f.fail_after, p.fetch_timeout_after);
        EXPECT_EQ(inj.on_message().kind, injector::msg_fault::drop);
    }
    EXPECT_EQ(inj.fetch_timeouts(), 20u);
    EXPECT_EQ(inj.msg_drops(), 20u);
}

TEST(fault_injector, clock_skew_is_pure_and_keeps_time_monotone)
{
    plan p;
    p.clock_skew_amplitude = 2 * sim::ms;
    p.clock_skew_period = 5 * sim::ms;
    injector inj{p};
    sim::time_ns prev = 0;
    for (sim::time_ns t = 0; t <= 100 * sim::ms; t += 100 * sim::us) {
        const sim::time_ns skew = inj.clock_skew(t);
        EXPECT_EQ(skew, inj.clock_skew(t));  // pure in (seed, t)
        EXPECT_LE(skew, p.clock_skew_period / 2);
        EXPECT_GE(skew, -p.clock_skew_period / 2);
        const sim::time_ns skewed = t + skew;
        EXPECT_GE(skewed, prev) << "skewed clock ran backwards at t=" << t;
        prev = skewed;
    }
}

// --- browser interposition: network ---------------------------------------

TEST(browser_faults, fetch_timeout_reaches_the_fail_callback)
{
    rt::browser b(rt::chrome_profile());
    plan p;
    p.fetch_timeout_bp = 10'000;
    injector inj{p};
    b.set_fault_injector(&inj);
    b.net().serve(rt::resource{"https://site/a", "https://site",
                               rt::resource_kind::data, 2048, 0, 0, 0});
    rt::fetch_result got;
    bool then_called = false;
    b.main().post_task(0, [&] {
        b.main().apis().fetch(
            "https://site/a", {}, [&](const rt::fetch_result&) { then_called = true; },
            [&](const rt::fetch_result& r) { got = r; });
    });
    b.run();
    EXPECT_FALSE(then_called);
    EXPECT_FALSE(got.ok);
    EXPECT_EQ(got.kind, rt::fetch_error::timeout);
    EXPECT_TRUE(got.retryable());
}

TEST(browser_faults, partial_body_reports_truncated_bytes)
{
    rt::browser b(rt::chrome_profile());
    plan p;
    p.fetch_partial_bp = 10'000;
    injector inj{p};
    b.set_fault_injector(&inj);
    b.net().serve(rt::resource{"https://site/a", "https://site",
                               rt::resource_kind::data, 2048, 0, 0, 0});
    rt::fetch_result got;
    b.main().post_task(0, [&] {
        b.main().apis().fetch("https://site/a", {}, nullptr,
                              [&](const rt::fetch_result& r) { got = r; });
    });
    b.run();
    EXPECT_EQ(got.kind, rt::fetch_error::partial);
    EXPECT_EQ(got.bytes, 1024u);  // half the 2048-byte resource arrived
    EXPECT_TRUE(got.retryable());
}

TEST(browser_faults, latency_spike_still_succeeds_but_later)
{
    const auto timed_fetch = [](injector* inj) {
        rt::browser b(rt::chrome_profile());
        if (inj != nullptr) b.set_fault_injector(inj);
        b.net().serve(rt::resource{"https://site/a", "https://site",
                                   rt::resource_kind::data, 2048, 0, 0, 0});
        double done_ms = -1.0;
        bool ok = false;
        b.main().post_task(0, [&] {
            b.main().apis().fetch(
                "https://site/a", {},
                [&](const rt::fetch_result& r) {
                    ok = r.ok;
                    done_ms = b.main().now_ms_raw();
                },
                nullptr);
        });
        b.run();
        EXPECT_TRUE(ok);
        return done_ms;
    };
    plan p;
    p.fetch_spike_bp = 10'000;
    p.fetch_spike = 80 * sim::ms;
    injector inj{p};
    const double baseline = timed_fetch(nullptr);
    const double spiked = timed_fetch(&inj);
    EXPECT_GE(spiked - baseline, 79.0);
}

// --- browser interposition: channels ---------------------------------------

TEST(browser_faults, dropped_message_never_delivers_and_ledger_settles)
{
    rt::browser b(rt::chrome_profile());
    plan p;
    p.msg_drop_bp = 10'000;
    injector inj{p};
    b.set_fault_injector(&inj);
    b.register_worker_script("echo.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });
    int deliveries = 0;
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("echo.js");
        w->set_onmessage([&](const rt::message_event&) { ++deliveries; });
        w->post_message(rt::js_value{"ping"}, {});
    });
    b.run();
    EXPECT_EQ(deliveries, 0);
    EXPECT_GT(inj.msg_drops(), 0u);
    EXPECT_EQ(b.messages_in_flight(), 0);  // bookkeeping settled despite the drop
}

TEST(browser_faults, duplicated_message_delivers_twice)
{
    rt::browser b(rt::chrome_profile());
    plan p;
    p.msg_duplicate_bp = 10'000;
    injector inj{p};
    b.set_fault_injector(&inj);
    std::vector<std::string> seen;
    b.register_worker_script("counter.js", [&](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&](const rt::message_event& e) {
            seen.push_back(e.data.as_string());
        });
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("counter.js");
        w->post_message(rt::js_value{"once"}, {});
    });
    b.run();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "once");
    EXPECT_EQ(seen[1], "once");
    EXPECT_EQ(b.messages_in_flight(), 0);
}

TEST(browser_faults, delayed_messages_stay_fifo_per_channel)
{
    rt::browser b(rt::chrome_profile());
    plan p;
    p.msg_delay_bp = 5'000;  // roughly every other message delayed
    p.msg_delay = 10 * sim::ms;
    injector inj{p};
    b.set_fault_injector(&inj);
    std::vector<std::string> seen;
    b.register_worker_script("order.js", [&](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&](const rt::message_event& e) {
            seen.push_back(e.data.as_string());
        });
    });
    b.main().post_task(0, [&] {
        auto w = b.main().apis().create_worker("order.js");
        for (int i = 0; i < 8; ++i) {
            w->post_message(rt::js_value{"m" + std::to_string(i)}, {});
        }
    });
    b.run();
    ASSERT_EQ(seen.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], "m" + std::to_string(i))
            << "channel reordered under delay faults";
    }
    EXPECT_GT(inj.msg_delays(), 0u);
}

// --- browser interposition: clocks ------------------------------------------

TEST(browser_faults, skewed_performance_now_never_runs_backwards)
{
    rt::browser b(rt::chrome_profile());
    plan p;
    p.clock_skew_amplitude = 2 * sim::ms;
    p.clock_skew_period = 5 * sim::ms;
    injector inj{p};
    b.set_fault_injector(&inj);
    std::vector<double> readings;
    b.main().post_task(0, [&] {
        for (int i = 0; i < 100; ++i) {
            readings.push_back(b.main().apis().performance_now());
            b.main().consume(700 * sim::us);
        }
    });
    b.run();
    ASSERT_EQ(readings.size(), 100u);
    for (std::size_t i = 1; i < readings.size(); ++i) {
        EXPECT_GE(readings[i], readings[i - 1]);
    }
}

}  // namespace
